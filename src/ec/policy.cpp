#include "ec/policy.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <mutex>
#include <tuple>

#include "ec/gf256.h"

namespace rspaxos::ec {
namespace {

/// Column-block width for the accumulate kernels (same budget as RsCode:
/// one block of every live sub-share stays cache-resident per sweep).
constexpr size_t kCodeBlock = 16 * 1024;

/// Incremental row-echelon workspace over GF(2^8): add() keeps a row only if
/// it is linearly independent of the rows already kept. Rows are stored
/// reduced and pivot-normalized, so each add is one back-substitution sweep.
class Elim {
 public:
  explicit Elim(size_t cols) : cols_(cols) {}

  size_t rank() const { return rows_.size(); }

  /// Reduces `v` (length cols) against the kept rows. Returns true and keeps
  /// the reduced row iff it was independent.
  bool add(std::vector<uint8_t> v) {
    reduce(v.data());
    size_t p = 0;
    while (p < cols_ && v[p] == 0) ++p;
    if (p == cols_) return false;
    const uint8_t* scale = gf::mul_table_row(gf::inv(v[p]));
    for (size_t c = p; c < cols_; ++c) v[c] = scale[v[c]];
    pivots_.push_back(p);
    rows_.push_back(std::move(v));
    return true;
  }

  /// In-place reduction of an external row (length cols) against the kept
  /// rows; afterwards v is zero iff it was in their span.
  void reduce(uint8_t* v) const {
    for (size_t i = 0; i < rows_.size(); ++i) {
      const uint8_t f = v[pivots_[i]];
      if (f == 0) continue;
      const uint8_t* t = gf::mul_table_row(f);
      const uint8_t* r = rows_[i].data();
      for (size_t c = pivots_[i]; c < cols_; ++c) v[c] ^= t[r[c]];
    }
  }

 private:
  size_t cols_;
  std::vector<std::vector<uint8_t>> rows_;
  std::vector<size_t> pivots_;
};

/// Solves C * rows == targets for C (targets.rows x rows.rows): each target
/// row must be a linear combination of the fetched rows. Works for any row
/// count (the fetched set may be redundant or rectangular — this is the
/// repair-schedule solver, not a square inverse). Fails with
/// kFailedPrecondition if some target is outside the row span.
StatusOr<Matrix> solve_combination(const Matrix& rows, const Matrix& targets) {
  const size_t k = rows.rows();
  const size_t d = rows.cols();
  assert(targets.cols() == d);
  // Augmented echelon basis: each kept row is [span-part | combination-part],
  // where span-part == combination-part * original rows (invariant preserved
  // by elimination since the field has characteristic 2).
  Elim basis(d + k);
  for (size_t j = 0; j < k; ++j) {
    std::vector<uint8_t> aug(d + k, 0);
    std::memcpy(aug.data(), rows.row(j), d);
    aug[d + j] = 1;
    // Pivot landing in the combination tail means the span-part reduced to
    // zero: a redundant fetch. Drop it — no target needs it.
    std::vector<uint8_t> probe = aug;
    basis.reduce(probe.data());
    bool span_nonzero = false;
    for (size_t c = 0; c < d; ++c) {
      if (probe[c] != 0) { span_nonzero = true; break; }
    }
    if (span_nonzero) basis.add(std::move(aug));
  }
  Matrix c(targets.rows(), k);
  for (size_t t = 0; t < targets.rows(); ++t) {
    std::vector<uint8_t> aug(d + k, 0);
    std::memcpy(aug.data(), targets.row(t), d);
    basis.reduce(aug.data());
    for (size_t col = 0; col < d; ++col) {
      if (aug[col] != 0) {
        return Status::failed_precondition(
            "repair target not reconstructible from fetched shares");
      }
    }
    for (size_t j = 0; j < k; ++j) c.at(t, j) = aug[d + j];
  }
  return c;
}

/// True iff the sub-rows of the given (distinct) share indices span all of
/// GF(2^8)^D, i.e. the subset reconstructs every sub-stripe of the value.
bool subset_spans(const Matrix& gen, int s, const std::vector<int>& idxs) {
  const size_t d = gen.cols();
  Elim e(d);
  for (int idx : idxs) {
    for (int j = 0; j < s; ++j) {
      const uint8_t* r = gen.row(static_cast<size_t>(idx) * static_cast<size_t>(s) +
                                 static_cast<size_t>(j));
      e.add(std::vector<uint8_t>(r, r + d));
      if (e.rank() == d) return true;
    }
  }
  return e.rank() == d;
}

/// Index of the variable a unit generator row selects, or -1 if the row is
/// not a unit vector. Unit rows get memcpy fast paths in encode and decode.
int unit_var(const uint8_t* row, size_t d) {
  int u = -1;
  for (size_t c = 0; c < d; ++c) {
    if (row[c] == 0) continue;
    if (row[c] != 1 || u >= 0) return -1;
    u = static_cast<int>(c);
  }
  return u;
}

}  // namespace

int RepairPlan::sub_count() const {
  int c = 0;
  for (const ShareFetch& f : fetches) c += std::popcount(f.sub_mask);
  return c;
}

EcPolicy::EcPolicy(int x, int n, int s, int asd, Matrix gen)
    : x_(x), n_(n), s_(s), asd_(asd), gen_(std::move(gen)) {
  assert(gen_.rows() == static_cast<size_t>(n_) * static_cast<size_t>(s_));
  assert(gen_.cols() == static_cast<size_t>(x_) * static_cast<size_t>(s_));
}

EcPolicy::~EcPolicy() = default;

void EcPolicy::add_candidate_plans(int, const std::vector<int>&,
                                   std::vector<RepairPlan>*) const {}

std::vector<Bytes> EcPolicy::encode(BytesView value) const {
  const size_t ss = share_size(value.size());
  std::vector<Bytes> shares(static_cast<size_t>(n_));
  std::vector<uint8_t*> dsts(static_cast<size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    shares[static_cast<size_t>(i)].resize(ss);
    dsts[static_cast<size_t>(i)] = shares[static_cast<size_t>(i)].data();
  }
  encode_into(value, dsts.data());
  return shares;
}

void EcPolicy::encode_into(BytesView value, uint8_t* const* dsts) const {
  const size_t sub = sub_size(value.size());
  if (sub == 0) return;
  const size_t d = gen_.cols();

  // Per-variable source regions: full sub-blocks point into the value, the
  // (single) partial tail block is padded into scratch, all-zero blocks stay
  // null and contribute nothing.
  Bytes tail;
  std::vector<const uint8_t*> src(d, nullptr);
  for (size_t v = 0; v < d; ++v) {
    const size_t off = v * sub;
    if (off >= value.size()) break;
    if (off + sub <= value.size()) {
      src[v] = value.data() + off;
    } else {
      tail.assign(sub, 0);
      std::memcpy(tail.data(), value.data() + off, value.size() - off);
      src[v] = tail.data();
    }
  }

  // Unit rows (all systematic sub-shares, plus any pure-copy parity rows)
  // are straight memcpys; the rest accumulate through the blocked kernel.
  struct ComputedRow {
    const uint8_t* coeffs;
    uint8_t* dst;
  };
  std::vector<ComputedRow> computed;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < s_; ++j) {
      const uint8_t* row =
          gen_.row(static_cast<size_t>(i) * static_cast<size_t>(s_) + static_cast<size_t>(j));
      uint8_t* dst = dsts[i] + static_cast<size_t>(j) * sub;
      int u = unit_var(row, d);
      if (u >= 0) {
        if (src[static_cast<size_t>(u)] != nullptr) {
          std::memcpy(dst, src[static_cast<size_t>(u)], sub);
        } else {
          std::memset(dst, 0, sub);
        }
      } else {
        std::memset(dst, 0, sub);
        computed.push_back({row, dst});
      }
    }
  }
  for (size_t off = 0; off < sub; off += kCodeBlock) {
    const size_t len = std::min(kCodeBlock, sub - off);
    for (size_t v = 0; v < d; ++v) {
      if (src[v] == nullptr) continue;
      for (const ComputedRow& r : computed) {
        if (r.coeffs[v] != 0) gf::mul_add_region(r.dst + off, src[v] + off, r.coeffs[v], len);
      }
    }
  }
}

Bytes EcPolicy::encode_share(BytesView value, int index) const {
  assert(index >= 0 && index < n_);
  const size_t sub = sub_size(value.size());
  const size_t d = gen_.cols();
  Bytes out(static_cast<size_t>(s_) * sub, 0);
  if (sub == 0) return out;
  Bytes block;  // padded variable block, materialized per use
  auto var_block = [&](size_t v) -> const uint8_t* {
    const size_t off = v * sub;
    if (off >= value.size()) return nullptr;
    if (off + sub <= value.size()) return value.data() + off;
    block.assign(sub, 0);
    std::memcpy(block.data(), value.data() + off, value.size() - off);
    return block.data();
  };
  for (int j = 0; j < s_; ++j) {
    const uint8_t* row =
        gen_.row(static_cast<size_t>(index) * static_cast<size_t>(s_) + static_cast<size_t>(j));
    uint8_t* dst = out.data() + static_cast<size_t>(j) * sub;
    for (size_t v = 0; v < d; ++v) {
      if (row[v] == 0) continue;
      const uint8_t* s = var_block(v);
      if (s != nullptr) gf::mul_add_region(dst, s, row[v], sub);
    }
  }
  return out;
}

bool EcPolicy::decodable(const std::vector<int>& have) const {
  std::vector<int> idxs;
  idxs.reserve(have.size());
  for (int i : have) {
    if (i >= 0 && i < n_) idxs.push_back(i);
  }
  std::sort(idxs.begin(), idxs.end());
  idxs.erase(std::unique(idxs.begin(), idxs.end()), idxs.end());
  const size_t d = gen_.cols();
  if (idxs.size() * static_cast<size_t>(s_) < d) return false;
  if (static_cast<int>(idxs.size()) >= asd_) return true;
  return subset_spans(gen_, s_, idxs);
}

StatusOr<Bytes> EcPolicy::decode(const std::map<int, Bytes>& shares,
                                 size_t value_len) const {
  const size_t sub = sub_size(value_len);
  const size_t ss = share_size(value_len);
  const size_t d = gen_.cols();

  // Greedily collect D independent sub-rows, walking shares in index order so
  // systematic sub-shares (straight copies) win over parity whenever present.
  Elim basis(d);
  std::vector<size_t> rows;              // generator row ids of kept sub-rows
  std::vector<const uint8_t*> inputs;    // matching sub-share data
  for (const auto& [idx, data] : shares) {
    if (idx < 0 || idx >= n_) return Status::invalid("share index out of range");
    if (data.size() != ss) return Status::invalid("inconsistent share size");
    for (int j = 0; j < s_ && rows.size() < d; ++j) {
      const size_t rid =
          static_cast<size_t>(idx) * static_cast<size_t>(s_) + static_cast<size_t>(j);
      const uint8_t* r = gen_.row(rid);
      if (basis.add(std::vector<uint8_t>(r, r + d))) {
        rows.push_back(rid);
        inputs.push_back(data.data() + static_cast<size_t>(j) * sub);
      }
    }
    if (rows.size() == d) break;
  }
  if (rows.size() < d) {
    return Status::failed_precondition("share set not decodable for this code");
  }

  Bytes value(d * sub, 0);

  // Unit sub-rows are their variable verbatim (memcpy); only the remaining
  // variables pay the inversion + blocked multiply-accumulate.
  std::vector<bool> copied(d, false);
  for (size_t j = 0; j < rows.size(); ++j) {
    int u = unit_var(gen_.row(rows[j]), d);
    if (u >= 0 && !copied[static_cast<size_t>(u)]) {
      copied[static_cast<size_t>(u)] = true;
      if (sub > 0) std::memcpy(value.data() + static_cast<size_t>(u) * sub, inputs[j], sub);
    }
  }
  std::vector<size_t> missing;
  for (size_t v = 0; v < d; ++v) {
    if (!copied[v]) missing.push_back(v);
  }
  if (!missing.empty() && sub > 0) {
    Matrix sel(d, d);
    for (size_t j = 0; j < rows.size(); ++j) {
      std::memcpy(&sel.at(j, 0), gen_.row(rows[j]), d);
    }
    auto inv = sel.inverted();
    if (!inv.is_ok()) return inv.status();
    const Matrix& m = inv.value();
    for (size_t off = 0; off < sub; off += kCodeBlock) {
      const size_t len = std::min(kCodeBlock, sub - off);
      for (size_t j = 0; j < rows.size(); ++j) {
        const uint8_t* srcp = inputs[j] + off;
        for (size_t v : missing) {
          const uint8_t c = m.at(v, j);
          if (c != 0) gf::mul_add_region(value.data() + v * sub + off, srcp, c, len);
        }
      }
    }
  }

  value.resize(value_len);
  return value;
}

bool EcPolicy::rows_feasible(const RepairPlan& plan, Matrix* rows) const {
  const size_t d = gen_.cols();
  const int k = plan.sub_count();
  Matrix m(static_cast<size_t>(k), d);
  size_t r = 0;
  for (const ShareFetch& f : plan.fetches) {
    if (f.share_idx < 0 || f.share_idx >= n_) return false;
    if (f.sub_mask == 0 || f.sub_mask >= (1u << s_)) return false;
    for (int j = 0; j < s_; ++j) {
      if ((f.sub_mask & (1u << j)) == 0) continue;
      std::memcpy(&m.at(r, 0),
                  gen_.row(static_cast<size_t>(f.share_idx) * static_cast<size_t>(s_) +
                           static_cast<size_t>(j)),
                  d);
      ++r;
    }
  }
  Matrix targets;
  if (plan.target >= 0) {
    std::vector<size_t> trows(static_cast<size_t>(s_));
    for (int j = 0; j < s_; ++j) {
      trows[static_cast<size_t>(j)] =
          static_cast<size_t>(plan.target) * static_cast<size_t>(s_) + static_cast<size_t>(j);
    }
    targets = gen_.select_rows(trows);
  } else {
    targets = Matrix::identity(d);
  }
  if (!solve_combination(m, targets).is_ok()) return false;
  if (rows != nullptr) *rows = std::move(m);
  return true;
}

RepairPlan EcPolicy::plan_repair(int target, const std::vector<int>& live,
                                 const std::vector<double>& cost) const {
  assert(target == RepairPlan::kWholeValue || (target >= 0 && target < n_));
  std::vector<int> src;
  src.reserve(live.size());
  for (int i : live) {
    if (i >= 0 && i < n_ && i != target) src.push_back(i);
  }
  std::sort(src.begin(), src.end());
  src.erase(std::unique(src.begin(), src.end()), src.end());

  auto cost_of = [&](int i) {
    return static_cast<size_t>(i) < cost.size() ? cost[static_cast<size_t>(i)] : 1.0;
  };
  const uint32_t full = (1u << s_) - 1;

  std::vector<RepairPlan> cands;
  add_candidate_plans(target, src, &cands);

  // Generic fallback: grow a cheapest-first share set until it can rebuild
  // the target (for whole-value plans that means the set is decodable). This
  // is exactly "fetch any X" for MDS codes and a safety net for every
  // structure-aware candidate above.
  {
    std::vector<int> order = src;
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return cost_of(a) < cost_of(b); });
    RepairPlan greedy;
    greedy.target = target;
    for (int i : order) {
      greedy.fetches.push_back({i, full});
      if (rows_feasible(greedy, nullptr)) {
        cands.push_back(greedy);
        break;
      }
    }
  }

  RepairPlan best;
  best.target = target;
  double best_cost = 0;
  for (RepairPlan& p : cands) {
    if (p.fetches.empty() || p.target != target) continue;
    bool valid = true;
    double c = 0;
    for (const ShareFetch& f : p.fetches) {
      if (!std::binary_search(src.begin(), src.end(), f.share_idx) || f.sub_mask == 0 ||
          f.sub_mask > full) {
        valid = false;
        break;
      }
      c += static_cast<double>(std::popcount(f.sub_mask)) * cost_of(f.share_idx);
    }
    if (!valid || !rows_feasible(p, nullptr)) continue;
    if (best.fetches.empty() || c < best_cost ||
        (c == best_cost && p.sub_count() < best.sub_count())) {
      best = std::move(p);
      best_cost = c;
    }
  }
  return best;
}

StatusOr<Bytes> EcPolicy::run_repair(const RepairPlan& plan,
                                     const std::map<int, Bytes>& fetched,
                                     size_t value_len) const {
  if (!plan.feasible()) return Status::invalid("empty repair plan");
  if (plan.target != RepairPlan::kWholeValue && (plan.target < 0 || plan.target >= n_)) {
    return Status::invalid("repair target out of range");
  }
  const size_t sub = sub_size(value_len);
  const size_t d = gen_.cols();

  Matrix rows(static_cast<size_t>(plan.sub_count()), d);
  std::vector<const uint8_t*> inputs;
  inputs.reserve(rows.rows());
  size_t r = 0;
  for (const ShareFetch& f : plan.fetches) {
    if (f.share_idx < 0 || f.share_idx >= n_ || f.sub_mask == 0 ||
        f.sub_mask >= (1u << s_)) {
      return Status::invalid("malformed repair fetch");
    }
    auto it = fetched.find(f.share_idx);
    if (it == fetched.end()) return Status::invalid("repair fetch data missing");
    const size_t want = static_cast<size_t>(std::popcount(f.sub_mask)) * sub;
    if (it->second.size() != want) return Status::invalid("repair fetch size mismatch");
    size_t seg = 0;
    for (int j = 0; j < s_; ++j) {
      if ((f.sub_mask & (1u << j)) == 0) continue;
      std::memcpy(&rows.at(r, 0),
                  gen_.row(static_cast<size_t>(f.share_idx) * static_cast<size_t>(s_) +
                           static_cast<size_t>(j)),
                  d);
      inputs.push_back(it->second.data() + seg * sub);
      ++seg;
      ++r;
    }
  }

  Matrix targets;
  if (plan.target >= 0) {
    std::vector<size_t> trows(static_cast<size_t>(s_));
    for (int j = 0; j < s_; ++j) {
      trows[static_cast<size_t>(j)] =
          static_cast<size_t>(plan.target) * static_cast<size_t>(s_) + static_cast<size_t>(j);
    }
    targets = gen_.select_rows(trows);
  } else {
    targets = Matrix::identity(d);
  }
  auto comb = solve_combination(rows, targets);
  if (!comb.is_ok()) return comb.status();
  const Matrix& c = comb.value();

  Bytes out(targets.rows() * sub, 0);
  for (size_t off = 0; off < sub; off += kCodeBlock) {
    const size_t len = std::min(kCodeBlock, sub - off);
    for (size_t j = 0; j < rows.rows(); ++j) {
      const uint8_t* srcp = inputs[j] + off;
      for (size_t t = 0; t < targets.rows(); ++t) {
        const uint8_t k = c.at(t, j);
        if (k != 0) gf::mul_add_region(out.data() + t * sub + off, srcp, k, len);
      }
    }
  }
  if (plan.target == RepairPlan::kWholeValue) out.resize(value_len);
  return out;
}

int brute_force_any_subset_decodable(const Matrix& gen, int n, int s) {
  const size_t d = gen.cols();
  const int min_t =
      static_cast<int>((d + static_cast<size_t>(s) - 1) / static_cast<size_t>(s));
  for (int t = min_t; t <= n; ++t) {
    // Enumerate every t-subset of [0, n); the first size where all of them
    // span is the answer (supersets of spanning sets span, so this is the
    // minimum over a monotone property).
    std::vector<int> idxs(static_cast<size_t>(t));
    for (int i = 0; i < t; ++i) idxs[static_cast<size_t>(i)] = i;
    bool all_span = true;
    while (true) {
      if (!subset_spans(gen, s, idxs)) {
        all_span = false;
        break;
      }
      int i = t - 1;
      while (i >= 0 && idxs[static_cast<size_t>(i)] == n - t + i) --i;
      if (i < 0) break;
      ++idxs[static_cast<size_t>(i)];
      for (int j = i + 1; j < t; ++j) {
        idxs[static_cast<size_t>(j)] = idxs[static_cast<size_t>(j - 1)] + 1;
      }
    }
    if (all_span) return t;
  }
  return n;
}

StatusOr<std::unique_ptr<EcPolicy>> make_policy(CodeId code, int x, int n) {
  switch (code) {
    case CodeId::kRs: return make_rs_policy(x, n);
    case CodeId::kLrc: return make_lrc_policy(x, n);
    case CodeId::kHh: return make_hh_policy(x, n);
  }
  return Status::invalid("unknown erasure-code id");
}

const EcPolicy& PolicyCache::get(CodeId code, int x, int n) {
  auto p = get_checked(static_cast<uint8_t>(code), static_cast<uint64_t>(x),
                       static_cast<uint64_t>(n));
  assert(p.is_ok() && "PolicyCache::get with invalid (code, x, n)");
  return *p.value();
}

StatusOr<const EcPolicy*> PolicyCache::get_checked(uint8_t code, uint64_t x,
                                                   uint64_t n) {
  if (!code_id_valid(code)) return Status::invalid("unknown erasure-code id");
  if (x < 1 || n < x || n > 255) {
    return Status::invalid("erasure-code params require 1 <= x <= n <= 255");
  }
  // Entries are heap-allocated once and never evicted, so returned pointers
  // stay valid for the life of the process even as the map rehashes — the
  // same immortality contract RsCodeCache relies on. The mutex makes lookup
  // safe from reactor threads and EcWorkerPool workers concurrently.
  static std::mutex mu;
  static auto* cache =
      new std::map<std::tuple<uint8_t, int, int>, std::unique_ptr<EcPolicy>>();
  std::lock_guard<std::mutex> lk(mu);
  auto key = std::make_tuple(code, static_cast<int>(x), static_cast<int>(n));
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto made = make_policy(static_cast<CodeId>(code), static_cast<int>(x),
                            static_cast<int>(n));
    if (!made.is_ok()) return made.status();
    it = cache->emplace(key, std::move(made).value()).first;
  }
  return it->second.get();
}

}  // namespace rspaxos::ec
