// AVX2 GF(2^8) region kernels: 64 bytes per unrolled step via vpshufb nibble
// lookups (each 16-byte table broadcast to both lanes). This TU is compiled
// with -mavx2 and must only be entered after cpu::tier_supported(kAvx2)
// returned true.
#if defined(RSPAXOS_GF_AVX2)

#include <immintrin.h>

#include "ec/gf256_simd.h"

namespace rspaxos::gf::detail {
namespace {

inline void xor_region_avx2(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

inline __m256i mul32(__m256i s, __m256i lo, __m256i hi, __m256i mask) {
  __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
  __m256i ph = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
  return _mm256_xor_si256(pl, ph);
}

}  // namespace

void mul_add_region_avx2(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_region_avx2(dst, src, n);
    return;
  }
  const uint8_t* nib = nibble_row(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  // 2x unroll: two independent load/shuffle/xor chains per iteration keep
  // both shuffle ports busy.
  for (; i + 64 <= n; i += 64) {
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(d0, mul32(s0, lo, hi, mask));
    d1 = _mm256_xor_si256(d1, mul32(s1, lo, hi, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  for (; i + 32 <= n; i += 32) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    d = _mm256_xor_si256(d, mul32(s, lo, hi, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  for (; i < n; ++i) dst[i] ^= nib_mul(nib, src[i]);
}

void mul_region_avx2(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n) {
  if (c == 0) {
    size_t i = 0;
    const __m256i z = _mm256_setzero_si256();
    for (; i + 32 <= n; i += 32) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), z);
    }
    for (; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    if (dst != src) __builtin_memcpy(dst, src, n);
    return;
  }
  const uint8_t* nib = nibble_row(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mul32(s, lo, hi, mask));
  }
  for (; i < n; ++i) dst[i] = nib_mul(nib, src[i]);
}

}  // namespace rspaxos::gf::detail

#endif  // RSPAXOS_GF_AVX2
