// Systematic Reed-Solomon erasure code θ(m, n) — the paper's coding substrate
// (the authors used Zfec; we implement the same optimal-erasure-code
// semantics from scratch).
//
// A value of any length is split into m equal-sized original shares (zero
// padded) and k = n - m parity shares of the same size; ANY m of the n shares
// reconstruct the value. Shares are identified by index 0..n-1; indices < m
// are the systematic (original-data) shares.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ec/matrix.h"
#include "util/bytes.h"
#include "util/status.h"

namespace rspaxos::ec {

/// Immutable codec for one θ(m, n) configuration. Thread-safe after
/// construction; construction cost (matrix setup) is amortized via Cache.
class RsCode {
 public:
  /// Requires 1 <= m <= n <= 255.
  static StatusOr<RsCode> create(int m, int n);

  int m() const { return m_; }
  int n() const { return n_; }

  /// Share size for a value of `value_len` bytes: ceil(value_len / m).
  size_t share_size(size_t value_len) const {
    return (value_len + static_cast<size_t>(m_) - 1) / static_cast<size_t>(m_);
  }

  /// Encodes `value` into n shares (systematic: shares [0, m) are the padded
  /// splits of the value). Works for empty values (all shares empty).
  std::vector<Bytes> encode(BytesView value) const;

  /// Zero-copy encode: writes share i into dsts[i] for i in [0, n), each a
  /// caller-provided buffer of share_size(value.size()) writable bytes (the
  /// proposer points these straight into its outgoing wire frames). Any
  /// alignment works; 32-byte-aligned buffers hit the fastest kernel path.
  /// Parity is produced by a cache-blocked matrix kernel that walks each
  /// data block once while hot and accumulates into every parity row.
  void encode_into(BytesView value, uint8_t* const* dsts) const;

  /// Encodes only the single share `index` (what a proposer needs when
  /// re-sending one follower's fragment during catch-up §4.5).
  Bytes encode_share(BytesView value, int index) const;

  /// Reconstructs the original value (of known length `value_len`) from any
  /// >= m shares, keyed by share index. Fails with kFailedPrecondition if
  /// fewer than m distinct valid indices are supplied, kInvalidArgument on
  /// inconsistent share sizes. Systematic shares among the inputs are copied
  /// straight through; the inversion + multiply-accumulate kernel only runs
  /// for the splits that are actually missing (and is skipped entirely when
  /// all m systematic shares are present).
  StatusOr<Bytes> decode(const std::map<int, Bytes>& shares, size_t value_len) const;

  /// The full n x m encoding matrix (row i generates share i). Exposed for
  /// tests and for the reconfiguration logic that reasons about share reuse.
  const Matrix& encoding_matrix() const { return encode_matrix_; }

 private:
  RsCode(int m, int n, Matrix enc) : m_(m), n_(n), encode_matrix_(std::move(enc)) {}

  void encode_parity_into(uint8_t* const* dsts, size_t ss) const;

  int m_;
  int n_;
  Matrix encode_matrix_;  // n x m, top m rows are the identity
};

/// Process-wide cache of codecs keyed by (m, n); RS-Paxos groups fetch their
/// codec per value without paying matrix construction per request.
class RsCodeCache {
 public:
  static const RsCode& get(int m, int n);
};

}  // namespace rspaxos::ec
