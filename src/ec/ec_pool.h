// Worker pool for CPU-heavy erasure-coding jobs.
//
// The paper trades cheap CPU (coding) for scarce network and storage — but
// that CPU is real: θ(X,N) encoding a multi-MB value takes long enough to
// stall every other Paxos group sharing the proposer's reactor. The pool
// moves large encodes off the reactor thread: the replica builds the
// destination frames on its loop (cheap), submits the GF(2^8) matrix work
// here, and the completion is posted back to the owning reactor via its
// EventLoop — so coding of large values no longer serializes unrelated
// groups' consensus.
//
// Jobs run in submission order per pool but complete on arbitrary workers;
// callers own posting results back to their reactor (NodeContext::set_timer
// is thread-safe on every transport).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rspaxos::ec {

class EcWorkerPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit EcWorkerPool(int threads);

  /// Drains the queue, then joins every worker. Callers must ensure the
  /// objects captured by still-queued jobs outlive the destructor (in
  /// practice: destroy the pool before the transport, after hosts stop).
  ~EcWorkerPool();

  /// Enqueues one job. Thread-safe; never blocks on job execution.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished (test helper).
  void drain();

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;        // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // drain() waits for quiescence
  std::deque<std::function<void()>> q_;
  int running_ = 0;                   // jobs currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rspaxos::ec
