// GF(2^8) arithmetic for Reed-Solomon coding.
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) (0x11d), the standard
// choice in storage erasure codes. Single-element ops use log/exp tables;
// bulk region ops (the encode/decode hot path) use a per-coefficient 256-entry
// product table, giving table-driven byte-at-a-time multiply-accumulate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rspaxos::gf {

/// Field addition/subtraction (identical in characteristic 2).
inline uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }

/// Field multiplication.
uint8_t mul(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be non-zero.
uint8_t inv(uint8_t a);

/// a / b; b must be non-zero.
uint8_t div(uint8_t a, uint8_t b);

/// base^exp (exp >= 0).
uint8_t pow(uint8_t base, unsigned exp);

/// Returns the row of the 256x256 product table for coefficient c:
/// table[x] == mul(c, x). Stable pointer, built once at startup.
const uint8_t* mul_table_row(uint8_t c);

/// dst[i] ^= c * src[i] for i in [0, n). The encode/decode inner loop.
void mul_add_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);

/// dst[i] = c * src[i] for i in [0, n).
void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);

}  // namespace rspaxos::gf
