// GF(2^8) arithmetic for Reed-Solomon coding.
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) (0x11d), the standard
// choice in storage erasure codes. Single-element ops use log/exp tables.
// Bulk region ops (the encode/decode hot path) are tiered: a byte-at-a-time
// 64 KiB-table scalar loop is the always-available reference, and nibble-split
// pshufb/vqtbl1 SIMD kernels (SSSE3 / AVX2 / NEON) are selected by runtime
// CPU-feature dispatch — see ec/cpu_features.h and ec/gf256_simd.h. Setting
// RSPAXOS_FORCE_SCALAR_GF=1 in the environment pins the scalar tier.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ec/cpu_features.h"

namespace rspaxos::gf {

/// Field addition/subtraction (identical in characteristic 2).
inline uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }

/// Field multiplication.
uint8_t mul(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be non-zero.
uint8_t inv(uint8_t a);

/// a / b; b must be non-zero.
uint8_t div(uint8_t a, uint8_t b);

/// base^exp (exp >= 0).
uint8_t pow(uint8_t base, unsigned exp);

/// Returns the row of the 256x256 product table for coefficient c:
/// table[x] == mul(c, x). Stable pointer, built once at startup.
const uint8_t* mul_table_row(uint8_t c);

/// dst[i] ^= c * src[i] for i in [0, n). The encode/decode inner loop.
/// Dispatches to the fastest kernel the host CPU supports; any src/dst
/// alignment is accepted (32-byte alignment is fastest).
void mul_add_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);

/// dst[i] = c * src[i] for i in [0, n).
void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);

/// Tier the region kernels are currently dispatched to.
cpu::GfTier active_tier();

/// Name of the active kernel tier ("scalar", "ssse3", "avx2", "neon").
const char* kernel_name();

/// Re-points the dispatch table at `tier`'s kernels. Returns false (leaving
/// the dispatch unchanged) if this build/CPU does not support the tier.
/// For benchmarks and the SIMD-vs-scalar cross-check tests; not intended for
/// concurrent use with in-flight region ops.
bool force_tier(cpu::GfTier tier);

}  // namespace rspaxos::gf
