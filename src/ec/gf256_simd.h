// Internal interface between the GF(2^8) dispatcher (gf256.cpp) and the
// per-ISA kernel translation units (gf256_ssse3.cpp, gf256_avx2.cpp,
// gf256_neon.cpp), each compiled with its own -m<isa> flag.
//
// Technique (the classic pshufb trick, cf. Plank et al. "Screaming Fast
// Galois Field Arithmetic", Uezato arXiv:2108.02692): split each byte b into
// nibbles, b = hi·16 + lo. By linearity over GF(2),
//     c*b = c*(hi·16) ^ c*lo,
// so two 16-entry product tables per coefficient answer any product with two
// byte-shuffle lookups — and 16-entry tables are exactly what one
// pshufb/vqtbl1 computes for 16/32 lanes at once.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rspaxos::gf::detail {

/// One dispatchable kernel set. All implementations are byte-identical to
/// the scalar reference for every coefficient, length, and alignment.
struct KernelOps {
  void (*mul_add)(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
  void (*mul)(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
  const char* name;
};

/// 32-byte nibble row for coefficient c: bytes [0,16) are lo[x] = c*x,
/// bytes [16,32) are hi[x] = c*(x<<4). 32-byte aligned, built at startup.
const uint8_t* nibble_row(uint8_t c);

/// Scalar reference kernels (the gf256.cpp table loops, always built).
void mul_add_region_scalar(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
void mul_region_scalar(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);

#if defined(RSPAXOS_GF_SSSE3)
void mul_add_region_ssse3(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
void mul_region_ssse3(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
#endif
#if defined(RSPAXOS_GF_AVX2)
void mul_add_region_avx2(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
void mul_region_avx2(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
#endif
#if defined(RSPAXOS_GF_NEON)
void mul_add_region_neon(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
void mul_region_neon(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
#endif

/// Scalar nibble-table tail used by every SIMD kernel for the < vector-width
/// remainder (avoids touching the 64 KiB full-table row from vector code).
inline uint8_t nib_mul(const uint8_t* nib, uint8_t b) {
  return static_cast<uint8_t>(nib[b & 0x0f] ^ nib[16 + (b >> 4)]);
}

}  // namespace rspaxos::gf::detail
