#include "ec/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace rspaxos::cpu {

const char* tier_name(GfTier t) {
  switch (t) {
    case GfTier::kScalar: return "scalar";
    case GfTier::kSsse3: return "ssse3";
    case GfTier::kAvx2: return "avx2";
    case GfTier::kNeon: return "neon";
  }
  return "unknown";
}

bool tier_supported(GfTier t) {
  switch (t) {
    case GfTier::kScalar:
      return true;
    case GfTier::kSsse3:
#if defined(RSPAXOS_GF_SSSE3)
      return __builtin_cpu_supports("ssse3");
#else
      return false;
#endif
    case GfTier::kAvx2:
#if defined(RSPAXOS_GF_AVX2)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case GfTier::kNeon:
#if defined(RSPAXOS_GF_NEON)
      return true;  // NEON is architecturally guaranteed on aarch64
#else
      return false;
#endif
  }
  return false;
}

GfTier best_supported_tier() {
  if (tier_supported(GfTier::kAvx2)) return GfTier::kAvx2;
  if (tier_supported(GfTier::kNeon)) return GfTier::kNeon;
  if (tier_supported(GfTier::kSsse3)) return GfTier::kSsse3;
  return GfTier::kScalar;
}

GfTier detect_gf_tier() {
  const char* force = std::getenv("RSPAXOS_FORCE_SCALAR_GF");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return GfTier::kScalar;
  }
  return best_supported_tier();
}

}  // namespace rspaxos::cpu
