#include "ec/rs_code.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <mutex>

#include "ec/gf256.h"
#include "obs/metrics.h"

namespace rspaxos::ec {
namespace {

/// Codec cost metrics (the paper's CPU-cost dimension, §6.5). Label-less:
/// encode/decode cost is a property of the process, not of a node id.
struct EcMetrics {
  obs::Counter* encode_ops;
  obs::Counter* encode_bytes;
  obs::HistogramMetric* encode_us;
  obs::Counter* decode_ops;
  obs::Counter* decode_bytes;
  obs::HistogramMetric* decode_us;

  static EcMetrics& get() {
    static EcMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      auto* e = new EcMetrics();
      e->encode_ops = &reg.counter("rsp_ec_encode_total", "RS encode calls (full or one-share)");
      e->encode_bytes = &reg.counter("rsp_ec_encode_bytes", "Input bytes RS-encoded");
      e->encode_us = &reg.histogram("rsp_ec_encode_us", "RS encode latency");
      e->decode_ops = &reg.counter("rsp_ec_decode_total", "RS decode calls");
      e->decode_bytes = &reg.counter("rsp_ec_decode_bytes", "Output bytes RS-decoded");
      e->decode_us = &reg.histogram("rsp_ec_decode_us", "RS decode latency");
      return e;
    }();
    return *m;
  }
};

int64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<RsCode> RsCode::create(int m, int n) {
  if (m < 1 || n < m || n > 255) {
    return Status::invalid("RsCode requires 1 <= m <= n <= 255");
  }
  // Build the systematic generator: take the n x m extended Vandermonde V,
  // and right-multiply by inv(top m x m block). The top block of the result
  // is the identity (systematic); any m rows remain invertible because they
  // are products of invertible Vandermonde sub-matrices.
  Matrix v = Matrix::vandermonde(static_cast<size_t>(n), static_cast<size_t>(m));
  std::vector<size_t> top(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) top[static_cast<size_t>(i)] = static_cast<size_t>(i);
  auto top_inv = v.select_rows(top).inverted();
  if (!top_inv.is_ok()) return top_inv.status();
  Matrix enc = v.times(top_inv.value());
  return RsCode(m, n, std::move(enc));
}

std::vector<Bytes> RsCode::encode(BytesView value) const {
  EcMetrics& em = EcMetrics::get();
  auto start = std::chrono::steady_clock::now();
  const size_t ss = share_size(value.size());
  std::vector<Bytes> shares(static_cast<size_t>(n_));
  // Systematic shares: padded splits of the value.
  for (int i = 0; i < m_; ++i) {
    Bytes& s = shares[static_cast<size_t>(i)];
    s.assign(ss, 0);
    size_t off = static_cast<size_t>(i) * ss;
    if (off < value.size()) {
      size_t len = std::min(ss, value.size() - off);
      std::memcpy(s.data(), value.data() + off, len);
    }
  }
  // Parity shares: row-by-row multiply-accumulate over the data shares.
  for (int i = m_; i < n_; ++i) {
    Bytes& s = shares[static_cast<size_t>(i)];
    s.assign(ss, 0);
    const uint8_t* row = encode_matrix_.row(static_cast<size_t>(i));
    for (int j = 0; j < m_; ++j) {
      gf::mul_add_region(s.data(), shares[static_cast<size_t>(j)].data(), row[j], ss);
    }
  }
  em.encode_ops->inc();
  em.encode_bytes->inc(value.size());
  em.encode_us->observe(elapsed_us(start));
  return shares;
}

Bytes RsCode::encode_share(BytesView value, int index) const {
  assert(index >= 0 && index < n_);
  EcMetrics& em = EcMetrics::get();
  auto start = std::chrono::steady_clock::now();
  const size_t ss = share_size(value.size());
  Bytes out(ss, 0);
  auto data_slice = [&](int j) {
    // Padded j-th systematic split, materialized only if needed.
    Bytes s(ss, 0);
    size_t off = static_cast<size_t>(j) * ss;
    if (off < value.size()) {
      size_t len = std::min(ss, value.size() - off);
      std::memcpy(s.data(), value.data() + off, len);
    }
    return s;
  };
  if (index < m_) {
    out = data_slice(index);
  } else {
    const uint8_t* row = encode_matrix_.row(static_cast<size_t>(index));
    for (int j = 0; j < m_; ++j) {
      if (row[j] == 0) continue;
      Bytes dj = data_slice(j);
      gf::mul_add_region(out.data(), dj.data(), row[j], ss);
    }
  }
  em.encode_ops->inc();
  em.encode_bytes->inc(value.size());
  em.encode_us->observe(elapsed_us(start));
  return out;
}

StatusOr<Bytes> RsCode::decode(const std::map<int, Bytes>& shares, size_t value_len) const {
  EcMetrics& em = EcMetrics::get();
  auto start = std::chrono::steady_clock::now();
  const size_t ss = share_size(value_len);
  // Pick the first m usable shares, preferring systematic ones (cheaper).
  std::vector<size_t> rows;
  std::vector<const Bytes*> inputs;
  for (const auto& [idx, data] : shares) {
    if (idx < 0 || idx >= n_) return Status::invalid("share index out of range");
    if (data.size() != ss) return Status::invalid("inconsistent share size");
    rows.push_back(static_cast<size_t>(idx));
    inputs.push_back(&data);
    if (rows.size() == static_cast<size_t>(m_)) break;
  }
  if (rows.size() < static_cast<size_t>(m_)) {
    return Status::failed_precondition("not enough shares to decode");
  }

  Bytes value(static_cast<size_t>(m_) * ss, 0);

  // Fast path: all m systematic shares present — just concatenate.
  bool all_systematic = true;
  for (size_t r : rows) {
    if (r >= static_cast<size_t>(m_)) {
      all_systematic = false;
      break;
    }
  }
  if (all_systematic) {
    for (size_t i = 0; i < rows.size(); ++i) {
      std::memcpy(value.data() + rows[i] * ss, inputs[i]->data(), ss);
    }
  } else {
    auto dec = encode_matrix_.select_rows(rows).inverted();
    if (!dec.is_ok()) return dec.status();
    const Matrix& d = dec.value();
    for (int out_row = 0; out_row < m_; ++out_row) {
      uint8_t* dst = value.data() + static_cast<size_t>(out_row) * ss;
      const uint8_t* coef = d.row(static_cast<size_t>(out_row));
      for (size_t j = 0; j < rows.size(); ++j) {
        gf::mul_add_region(dst, inputs[j]->data(), coef[j], ss);
      }
    }
  }

  value.resize(value_len);
  em.decode_ops->inc();
  em.decode_bytes->inc(value_len);
  em.decode_us->observe(elapsed_us(start));
  return value;
}

const RsCode& RsCodeCache::get(int m, int n) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, RsCode>* cache = new std::map<std::pair<int, int>, RsCode>();
  std::lock_guard<std::mutex> lk(mu);
  auto key = std::make_pair(m, n);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto code = RsCode::create(m, n);
    assert(code.is_ok() && "RsCodeCache::get with invalid (m, n)");
    it = cache->emplace(key, std::move(code).value()).first;
  }
  return it->second;
}

}  // namespace rspaxos::ec
