#include "ec/rs_code.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <mutex>

#include "ec/gf256.h"
#include "obs/metrics.h"

namespace rspaxos::ec {
namespace {

/// Column-block width for the matrix kernels. Chosen so one block of every
/// share (n blocks, n <= 14 in practice) stays resident in L1/L2 while the
/// inner loops sweep the coefficient tile.
constexpr size_t kCodeBlock = 16 * 1024;

/// Codec cost metrics (the paper's CPU-cost dimension, §6.5). Label-less:
/// encode/decode cost is a property of the process, not of a node id.
struct EcMetrics {
  obs::Counter* encode_ops;
  obs::Counter* encode_bytes;
  obs::HistogramMetric* encode_us;
  obs::Gauge* encode_mbps;
  obs::Gauge* kernel_tier;
  obs::Counter* decode_ops;
  obs::Counter* decode_bytes;
  obs::HistogramMetric* decode_us;

  static EcMetrics& get() {
    static EcMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      auto* e = new EcMetrics();
      e->encode_ops = &reg.counter("rsp_ec_encode_total", "RS encode calls (full or one-share)");
      e->encode_bytes = &reg.counter("rsp_ec_encode_bytes", "Input bytes RS-encoded");
      e->encode_us = &reg.histogram("rsp_ec_encode_us", "RS encode latency");
      e->encode_mbps =
          &reg.gauge("rsp_ec_encode_mbps", "Most recent full-encode throughput (MB/s)");
      e->kernel_tier = &reg.gauge(
          "rsp_ec_kernel_tier", "Active GF(2^8) kernel tier (0=scalar,1=ssse3,2=avx2,3=neon)");
      e->decode_ops = &reg.counter("rsp_ec_decode_total", "RS decode calls");
      e->decode_bytes = &reg.counter("rsp_ec_decode_bytes", "Output bytes RS-decoded");
      e->decode_us = &reg.histogram("rsp_ec_decode_us", "RS decode latency");
      e->kernel_tier->set(static_cast<int64_t>(gf::active_tier()));
      return e;
    }();
    return *m;
  }
};

int64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<RsCode> RsCode::create(int m, int n) {
  if (m < 1 || n < m || n > 255) {
    return Status::invalid("RsCode requires 1 <= m <= n <= 255");
  }
  // Build the systematic generator: take the n x m extended Vandermonde V,
  // and right-multiply by inv(top m x m block). The top block of the result
  // is the identity (systematic); any m rows remain invertible because they
  // are products of invertible Vandermonde sub-matrices.
  Matrix v = Matrix::vandermonde(static_cast<size_t>(n), static_cast<size_t>(m));
  std::vector<size_t> top(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) top[static_cast<size_t>(i)] = static_cast<size_t>(i);
  auto top_inv = v.select_rows(top).inverted();
  if (!top_inv.is_ok()) return top_inv.status();
  Matrix enc = v.times(top_inv.value());
  return RsCode(m, n, std::move(enc));
}

void RsCode::encode_parity_into(uint8_t* const* dsts, size_t ss) const {
  // Cache-blocked matrix kernel: for each column block, sweep every data
  // share once while it is hot and accumulate into all n-m parity rows
  // (row-major coefficient tile). The j == 0 pass initializes parity via
  // mul_region, so parity buffers never need a separate zeroing pass.
  for (size_t off = 0; off < ss; off += kCodeBlock) {
    const size_t len = std::min(kCodeBlock, ss - off);
    for (int j = 0; j < m_; ++j) {
      const uint8_t* src = dsts[j] + off;
      for (int i = m_; i < n_; ++i) {
        const uint8_t c = encode_matrix_.at(static_cast<size_t>(i), static_cast<size_t>(j));
        if (j == 0) {
          gf::mul_region(dsts[i] + off, src, c, len);
        } else {
          gf::mul_add_region(dsts[i] + off, src, c, len);
        }
      }
    }
  }
}

void RsCode::encode_into(BytesView value, uint8_t* const* dsts) const {
  EcMetrics& em = EcMetrics::get();
  auto start = std::chrono::steady_clock::now();
  const size_t ss = share_size(value.size());
  if (ss > 0) {
    // Systematic shares: padded splits of the value.
    for (int i = 0; i < m_; ++i) {
      uint8_t* d = dsts[i];
      const size_t off = static_cast<size_t>(i) * ss;
      const size_t len = off < value.size() ? std::min(ss, value.size() - off) : 0;
      if (len > 0) std::memcpy(d, value.data() + off, len);
      if (len < ss) std::memset(d + len, 0, ss - len);
    }
    encode_parity_into(dsts, ss);
  }
  em.encode_ops->inc();
  em.encode_bytes->inc(value.size());
  int64_t us = elapsed_us(start);
  em.encode_us->observe(us);
  // bytes per microsecond == MB/s; only meaningful when the clock moved.
  if (us > 0) em.encode_mbps->set(static_cast<int64_t>(value.size()) / us);
}

std::vector<Bytes> RsCode::encode(BytesView value) const {
  const size_t ss = share_size(value.size());
  std::vector<Bytes> shares(static_cast<size_t>(n_));
  std::vector<uint8_t*> dsts(static_cast<size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    shares[static_cast<size_t>(i)].resize(ss);
    dsts[static_cast<size_t>(i)] = shares[static_cast<size_t>(i)].data();
  }
  encode_into(value, dsts.data());
  return shares;
}

Bytes RsCode::encode_share(BytesView value, int index) const {
  assert(index >= 0 && index < n_);
  EcMetrics& em = EcMetrics::get();
  auto start = std::chrono::steady_clock::now();
  const size_t ss = share_size(value.size());
  Bytes out(ss, 0);
  auto data_slice = [&](int j) {
    // Padded j-th systematic split, materialized only if needed.
    Bytes s(ss, 0);
    size_t off = static_cast<size_t>(j) * ss;
    if (off < value.size()) {
      size_t len = std::min(ss, value.size() - off);
      std::memcpy(s.data(), value.data() + off, len);
    }
    return s;
  };
  if (index < m_) {
    out = data_slice(index);
  } else {
    const uint8_t* row = encode_matrix_.row(static_cast<size_t>(index));
    for (int j = 0; j < m_; ++j) {
      if (row[j] == 0) continue;
      Bytes dj = data_slice(j);
      gf::mul_add_region(out.data(), dj.data(), row[j], ss);
    }
  }
  em.encode_ops->inc();
  em.encode_bytes->inc(value.size());
  em.encode_us->observe(elapsed_us(start));
  return out;
}

StatusOr<Bytes> RsCode::decode(const std::map<int, Bytes>& shares, size_t value_len) const {
  EcMetrics& em = EcMetrics::get();
  auto start = std::chrono::steady_clock::now();
  const size_t ss = share_size(value_len);
  // Pick the first m usable shares. The map is index-ordered, so systematic
  // shares (cheaper: straight copies) are always preferred when present.
  std::vector<size_t> rows;
  std::vector<const Bytes*> inputs;
  for (const auto& [idx, data] : shares) {
    if (idx < 0 || idx >= n_) return Status::invalid("share index out of range");
    if (data.size() != ss) return Status::invalid("inconsistent share size");
    rows.push_back(static_cast<size_t>(idx));
    inputs.push_back(&data);
    if (rows.size() == static_cast<size_t>(m_)) break;
  }
  if (rows.size() < static_cast<size_t>(m_)) {
    return Status::failed_precondition("not enough shares to decode");
  }

  Bytes value(static_cast<size_t>(m_) * ss, 0);

  // Any systematic share among the inputs *is* its split of the value: the
  // corresponding row of the inverted decode matrix is necessarily the unit
  // vector selecting it (the selected matrix carries the identity row), so a
  // straight memcpy is byte-identical and skips the whole kernel pass.
  std::vector<size_t> input_of(static_cast<size_t>(m_), SIZE_MAX);
  for (size_t j = 0; j < rows.size(); ++j) {
    if (rows[j] < static_cast<size_t>(m_)) input_of[rows[j]] = j;
  }
  std::vector<int> missing;
  for (int out_row = 0; out_row < m_; ++out_row) {
    size_t j = input_of[static_cast<size_t>(out_row)];
    if (j != SIZE_MAX) {
      if (ss > 0) {
        std::memcpy(value.data() + static_cast<size_t>(out_row) * ss, inputs[j]->data(), ss);
      }
    } else {
      missing.push_back(out_row);
    }
  }
  if (!missing.empty()) {
    // Only the missing splits pay the inversion + multiply-accumulate, with
    // the same cache-blocked sweep as the encode kernel.
    auto dec = encode_matrix_.select_rows(rows).inverted();
    if (!dec.is_ok()) return dec.status();
    const Matrix& d = dec.value();
    for (size_t off = 0; off < ss; off += kCodeBlock) {
      const size_t len = std::min(kCodeBlock, ss - off);
      for (size_t j = 0; j < rows.size(); ++j) {
        const uint8_t* src = inputs[j]->data() + off;
        for (int out_row : missing) {
          uint8_t* dst = value.data() + static_cast<size_t>(out_row) * ss + off;
          const uint8_t c = d.at(static_cast<size_t>(out_row), j);
          if (j == 0) {
            gf::mul_region(dst, src, c, len);
          } else {
            gf::mul_add_region(dst, src, c, len);
          }
        }
      }
    }
  }

  value.resize(value_len);
  em.decode_ops->inc();
  em.decode_bytes->inc(value_len);
  em.decode_us->observe(elapsed_us(start));
  return value;
}

const RsCode& RsCodeCache::get(int m, int n) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, RsCode>* cache = new std::map<std::pair<int, int>, RsCode>();
  std::lock_guard<std::mutex> lk(mu);
  auto key = std::make_pair(m, n);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto code = RsCode::create(m, n);
    assert(code.is_ok() && "RsCodeCache::get with invalid (m, n)");
    it = cache->emplace(key, std::move(code).value()).first;
  }
  return it->second;
}

}  // namespace rspaxos::ec
