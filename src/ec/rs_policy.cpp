// Reed-Solomon wrapped as an EcPolicy: the byte paths delegate straight to
// the cached RsCode so the SIMD cache-blocked kernels, metrics, and the
// exact pre-policy share bytes are preserved (rs is the wire-compatibility
// baseline — conformance tests assert byte identity).
#include "ec/policy.h"
#include "ec/rs_code.h"

namespace rspaxos::ec {
namespace {

class RsPolicy final : public EcPolicy {
 public:
  RsPolicy(int x, int n, const RsCode* code)
      // MDS: any x shares decode, so any_subset_decodable == x.
      : EcPolicy(x, n, /*s=*/1, /*asd=*/x, code->encoding_matrix()), code_(code) {}

  CodeId id() const override { return CodeId::kRs; }

  std::vector<Bytes> encode(BytesView value) const override { return code_->encode(value); }
  void encode_into(BytesView value, uint8_t* const* dsts) const override {
    code_->encode_into(value, dsts);
  }
  Bytes encode_share(BytesView value, int index) const override {
    return code_->encode_share(value, index);
  }
  StatusOr<Bytes> decode(const std::map<int, Bytes>& shares, size_t value_len) const override {
    return code_->decode(shares, value_len);
  }

 private:
  const RsCode* code_;  // immortal RsCodeCache entry
};

}  // namespace

StatusOr<std::unique_ptr<EcPolicy>> make_rs_policy(int x, int n) {
  // Validate before touching RsCodeCache::get, which asserts on bad keys.
  auto probe = RsCode::create(x, n);
  if (!probe.is_ok()) return probe.status();
  const RsCode& cached = RsCodeCache::get(x, n);
  return std::unique_ptr<EcPolicy>(new RsPolicy(x, n, &cached));
}

}  // namespace rspaxos::ec
