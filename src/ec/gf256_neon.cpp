// NEON GF(2^8) region kernels: 16 bytes per step via two vqtbl1q nibble
// lookups. NEON is baseline on aarch64, so no extra compile flags are needed;
// the TU is still gated so non-ARM builds skip it entirely.
#if defined(RSPAXOS_GF_NEON)

#include <arm_neon.h>

#include "ec/gf256_simd.h"

namespace rspaxos::gf::detail {

void mul_add_region_neon(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n) {
  if (c == 0) return;
  if (c == 1) {
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
    }
    for (; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const uint8_t* nib = nibble_row(c);
  const uint8x16_t lo = vld1q_u8(nib);
  const uint8x16_t hi = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t s = vld1q_u8(src + i);
    uint8x16_t d = vld1q_u8(dst + i);
    uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(s, mask));
    uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    vst1q_u8(dst + i, veorq_u8(d, veorq_u8(pl, ph)));
  }
  for (; i < n; ++i) dst[i] ^= nib_mul(nib, src[i]);
}

void mul_region_neon(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n) {
  if (c == 0) {
    size_t i = 0;
    const uint8x16_t z = vdupq_n_u8(0);
    for (; i + 16 <= n; i += 16) vst1q_u8(dst + i, z);
    for (; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    if (dst != src) __builtin_memcpy(dst, src, n);
    return;
  }
  const uint8_t* nib = nibble_row(c);
  const uint8x16_t lo = vld1q_u8(nib);
  const uint8x16_t hi = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t s = vld1q_u8(src + i);
    uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(s, mask));
    uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    vst1q_u8(dst + i, veorq_u8(pl, ph));
  }
  for (; i < n; ++i) dst[i] = nib_mul(nib, src[i]);
}

}  // namespace rspaxos::gf::detail

#endif  // RSPAXOS_GF_NEON
