// Pluggable erasure-code policy layer (DESIGN.md §13).
//
// RS-Paxos originally hardwired one θ(X,N) Reed-Solomon code into every
// consensus, catch-up, and snapshot path. EcPolicy abstracts the code behind
// a linear-code interface rich enough for the repair optimizations that
// locality-aware codes enable:
//
//  - every policy is a systematic linear code over GF(2^8) described by a
//    generator matrix of (n*s) x (x*s), where s = sub_shares() is the number
//    of sub-stripes per share (1 for RS/LRC, 2 for Hitchhiker);
//  - decode() reconstructs the value from any *decodable* subset of shares
//    (for non-MDS codes like LRC, not every x-subset qualifies — callers must
//    ask decodable(), not count shares);
//  - plan_repair() returns the cheapest set of (share, sub-share-mask)
//    fetches that rebuilds a single lost share (or the whole value), given
//    which peers are live and an optional per-share relative cost;
//  - run_repair() executes such a plan on the fetched bytes.
//
// Policies are immutable and thread-safe after construction; fetch them
// through PolicyCache (entries are immortal, like RsCodeCache).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ec/code_id.h"
#include "ec/matrix.h"
#include "util/bytes.h"
#include "util/status.h"

namespace rspaxos::ec {

/// One fetch in a repair plan: sub-shares `sub_mask` (bit j = sub-stripe j)
/// of the share held by `share_idx`. For s == 1 codes the mask is always 1.
struct ShareFetch {
  int share_idx = 0;
  uint32_t sub_mask = 0;

  bool operator==(const ShareFetch&) const = default;
};

/// A decode schedule produced by EcPolicy::plan_repair. Fetch order is the
/// order run_repair expects the fetched sub-shares concatenated in (mask
/// bits ascending within one fetch).
struct RepairPlan {
  /// Target value for "reconstruct the whole value" plans.
  static constexpr int kWholeValue = -1;

  int target = kWholeValue;        // share index to rebuild, or kWholeValue
  std::vector<ShareFetch> fetches; // empty => no feasible plan

  bool feasible() const { return !fetches.empty(); }

  /// Total number of sub-shares fetched (network cost in units of sub_size).
  int sub_count() const;
};

/// A linear erasure-code policy. The base class implements the full
/// generator-matrix machinery (encode, rank-based decode with a systematic
/// fast path, repair planning and execution); concrete policies supply the
/// matrix geometry and optionally override the byte paths with tuned kernels
/// (RsPolicy delegates to the SIMD-blocked RsCode).
class EcPolicy {
 public:
  virtual ~EcPolicy();

  EcPolicy(const EcPolicy&) = delete;
  EcPolicy& operator=(const EcPolicy&) = delete;

  virtual CodeId id() const = 0;

  int x() const { return x_; }
  int n() const { return n_; }
  /// Sub-stripes per share (1 for rs/lrc, 2 for hh).
  int sub_shares() const { return s_; }

  /// Bytes of one sub-share for a value of `value_len` bytes.
  size_t sub_size(size_t value_len) const {
    size_t d = static_cast<size_t>(x_) * static_cast<size_t>(s_);
    return (value_len + d - 1) / d;
  }
  /// Bytes of one share: s * sub_size. For s == 1 this matches
  /// RsCode::share_size exactly (wire compatibility for rs).
  size_t share_size(size_t value_len) const {
    return static_cast<size_t>(s_) * sub_size(value_len);
  }
  /// Network bytes a plan fetches for a value of `value_len` bytes.
  size_t plan_bytes(const RepairPlan& plan, size_t value_len) const {
    return static_cast<size_t>(plan.sub_count()) * sub_size(value_len);
  }

  /// Smallest t such that EVERY t-subset of shares is decodable. Equals x
  /// for MDS codes (rs, hh); larger for lrc. Quorum sizing must use this,
  /// not x, for non-MDS codes.
  int any_subset_decodable() const { return asd_; }

  /// Encodes `value` into n shares of share_size(value.size()) bytes each.
  virtual std::vector<Bytes> encode(BytesView value) const;

  /// Zero-copy encode into caller-provided buffers dsts[0..n), each
  /// share_size(value.size()) writable bytes.
  virtual void encode_into(BytesView value, uint8_t* const* dsts) const;

  /// Encodes only share `index`.
  virtual Bytes encode_share(BytesView value, int index) const;

  /// True iff the given distinct share indices can reconstruct the value.
  bool decodable(const std::vector<int>& have) const;

  /// Reconstructs the value from a decodable set of full shares. Fails with
  /// kFailedPrecondition if the set is not decodable, kInvalidArgument on
  /// malformed share sizes/indices. Systematic sub-shares among the inputs
  /// are copied straight through; the solve kernel only runs for missing
  /// sub-stripes.
  virtual StatusOr<Bytes> decode(const std::map<int, Bytes>& shares,
                                 size_t value_len) const;

  /// Cheapest feasible plan rebuilding `target` (a share index, or
  /// RepairPlan::kWholeValue) from the `live` share indices (target itself is
  /// ignored if present). `cost[i]` is the relative per-byte cost of fetching
  /// from the holder of share i (empty = uniform). Returns an infeasible
  /// (empty-fetches) plan if `live` cannot rebuild the target.
  RepairPlan plan_repair(int target, const std::vector<int>& live,
                         const std::vector<double>& cost = {}) const;

  /// Executes a plan: `fetched[i]` holds the sub-shares of share i named by
  /// the plan's mask, concatenated in mask-bit order. Returns the rebuilt
  /// share (plan.target >= 0) or the whole value truncated to `value_len`.
  StatusOr<Bytes> run_repair(const RepairPlan& plan,
                             const std::map<int, Bytes>& fetched,
                             size_t value_len) const;

  /// The (n*s) x (x*s) generator matrix (rows i*s..i*s+s-1 generate share i).
  const Matrix& generator() const { return gen_; }

 protected:
  EcPolicy(int x, int n, int s, int asd, Matrix gen);

  /// Policy-specific candidate plans for plan_repair (e.g. LRC's local-group
  /// read, Hitchhiker's piggyback schedule). Candidates may be infeasible or
  /// reference dead shares; the base validates and prices each one against
  /// the generic cheapest-decodable-subset fallback.
  virtual void add_candidate_plans(int target, const std::vector<int>& live,
                                   std::vector<RepairPlan>* out) const;

 private:
  bool rows_feasible(const RepairPlan& plan, Matrix* rows) const;

  int x_;
  int n_;
  int s_;
  int asd_;
  Matrix gen_;
};

/// Smallest t such that every t-subset of the n shares has full-rank
/// sub-rows in `gen` (exhaustive; callers cap n at ~16). Exposed so tests
/// can cross-check the value each policy reports.
int brute_force_any_subset_decodable(const Matrix& gen, int n, int s);

/// θ(x, n) Reed-Solomon wrapped as a policy (byte-identical to the pre-policy
/// wire format; SIMD kernels via RsCode). Requires 1 <= x <= n <= 255.
StatusOr<std::unique_ptr<EcPolicy>> make_rs_policy(int x, int n);

/// Azure-style Locally Repairable Code: data split into local groups each
/// protected by an XOR parity, plus global RS parities. Single-share repair
/// reads only the local group. NOT MDS. Requires n - x >= 2 and n <= 16.
StatusOr<std::unique_ptr<EcPolicy>> make_lrc_policy(int x, int n);

/// Hitchhiker-style XOR piggyback over RS: two sub-stripes per share; parity
/// b-halves carry XORs of data a-sub-shares, roughly halving the bytes read
/// to repair a systematic share. MDS. Requires n - x >= 2 and n <= 16.
StatusOr<std::unique_ptr<EcPolicy>> make_hh_policy(int x, int n);

StatusOr<std::unique_ptr<EcPolicy>> make_policy(CodeId code, int x, int n);

/// Process-wide policy cache keyed by (code, x, n). Thread-safe: get() may
/// be called concurrently from reactor threads and ec::EcWorkerPool workers;
/// entries are immortal so returned references never dangle.
class PolicyCache {
 public:
  /// Trusted-parameter lookup (asserts on invalid geometry) — for callers
  /// holding an already-validated GroupConfig.
  static const EcPolicy& get(CodeId code, int x, int n);

  /// Wire-parameter lookup: validates code/x/n ranges (including the
  /// u64 -> int narrowing from varint decode) and returns a Status instead
  /// of asserting, so corrupt share records are rejected not crashed on.
  static StatusOr<const EcPolicy*> get_checked(uint8_t code, uint64_t x,
                                               uint64_t n);
};

}  // namespace rspaxos::ec
