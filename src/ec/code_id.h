// Wire-stable identifiers for the erasure-code policies (DESIGN.md §13).
//
// A CodeId travels inside share records, group configs, snapshot manifests
// and fetch messages, so the numeric values are frozen: kRs must stay 0 so
// that pre-policy frames (which never wrote a code id) decode as Reed-Solomon
// byte-for-byte. Ids are packed into 4-bit fields on the wire, so new codes
// must fit in [0, 15].
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace rspaxos::ec {

enum class CodeId : uint8_t {
  kRs = 0,   // θ(X,N) systematic Reed-Solomon (the paper's code; MDS)
  kLrc = 1,  // Azure-style Locally Repairable Code (local XOR groups; not MDS)
  kHh = 2,   // Hitchhiker-style XOR piggyback over RS (2 sub-shares; MDS)
};

inline constexpr uint8_t kMaxCodeId = 2;

inline bool code_id_valid(uint8_t raw) { return raw <= kMaxCodeId; }

inline const char* to_string(CodeId c) {
  switch (c) {
    case CodeId::kRs: return "rs";
    case CodeId::kLrc: return "lrc";
    case CodeId::kHh: return "hh";
  }
  return "?";
}

inline std::optional<CodeId> parse_code_id(std::string_view s) {
  if (s == "rs") return CodeId::kRs;
  if (s == "lrc") return CodeId::kLrc;
  if (s == "hh") return CodeId::kHh;
  return std::nullopt;
}

}  // namespace rspaxos::ec
