#include "ec/ec_pool.h"

#include <algorithm>

namespace rspaxos::ec {

EcWorkerPool::EcWorkerPool(int threads) {
  int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

EcWorkerPool::~EcWorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void EcWorkerPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void EcWorkerPool::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return q_.empty() && running_ == 0; });
}

void EcWorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_.wait(lk, [this] { return stopping_ || !q_.empty(); });
    if (q_.empty()) {
      if (stopping_) return;  // drained: stop only once the queue is empty
      continue;
    }
    std::function<void()> job = std::move(q_.front());
    q_.pop_front();
    running_++;
    lk.unlock();
    job();
    lk.lock();
    running_--;
    if (q_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace rspaxos::ec
