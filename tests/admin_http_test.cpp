// Admin-plane tests over the real stack: a 2-group TcpCluster with the
// introspection endpoints enabled, scraped through actual sockets exactly the
// way an operator's curl / Prometheus would. Covers the live surface
// (/metrics, /status, /healthz, /traces/recent), the HTTP robustness paths
// (malformed request line, wrong method, oversized head, early close) and
// that /status tracks consensus progress (commit indices advance with puts).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>

#include "kv/client.h"
#include "node/tcp_cluster.h"

namespace rspaxos {
namespace {

constexpr int kServers = 3;
constexpr uint32_t kGroups = 2;

struct HttpReply {
  int status = -1;       // -1: no/invalid status line came back
  std::string body;      // bytes after the blank line
  std::string raw;       // everything read until EOF
};

/// Connects to 127.0.0.1:port, writes `request` verbatim, reads to EOF.
/// `shutdown_early` closes the write half right after (or mid-) request to
/// model an impatient scraper.
HttpReply http_raw(uint16_t port, const std::string& request, bool shutdown_early = false) {
  HttpReply r;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return r;
  }
  size_t off = 0;
  while (off < request.size()) {
    // MSG_NOSIGNAL: the server legitimately closes mid-request (431 on an
    // oversized head) and a raw write() would raise SIGPIPE.
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  if (shutdown_early) ::shutdown(fd, SHUT_WR);
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    r.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (r.raw.rfind("HTTP/1.1 ", 0) == 0 && r.raw.size() >= 12) {
    r.status = std::stoi(r.raw.substr(9, 3));
  }
  size_t blank = r.raw.find("\r\n\r\n");
  if (blank != std::string::npos) r.body = r.raw.substr(blank + 4);
  return r;
}

HttpReply http_get(uint16_t port, const std::string& target) {
  return http_raw(port, "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

/// commit_index of group g inside a /status document (-1 when absent).
int64_t commit_index_of(const std::string& status_json, uint32_t g) {
  std::string anchor = "\"group\":" + std::to_string(g) + ",";
  size_t at = status_json.find(anchor);
  if (at == std::string::npos) return -1;
  size_t ci = status_json.find("\"commit_index\":", at);
  if (ci == std::string::npos) return -1;
  return std::stoll(status_json.substr(ci + std::strlen("\"commit_index\":")));
}

/// The i-th key routed to shard `group` under the current hash contract.
std::string key_in_group(uint32_t group, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "adm/" + std::to_string(n);
    if (kv::shard_of(key, kGroups) == group && found++ == i) return key;
  }
}

struct ClusterFixture {
  std::filesystem::path dir;
  std::unique_ptr<node::TcpCluster> cluster;
  net::TcpNode* cnode = nullptr;
  std::unique_ptr<kv::KvClient> client;
  uint32_t num_shards = 0;  // 0 = one shard per group (the identity default)

  void start() {
    dir = std::filesystem::temp_directory_path() /
          ("rspaxos_admin_http_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    node::TcpClusterOptions opts;
    opts.num_servers = kServers;
    opts.num_groups = kGroups;
    opts.num_shards = num_shards;
    // Two reactors (one group each): scrapes must compose per-reactor boards
    // and aggregate worst-reactor health, not just read one loop's state.
    opts.reactors = 2;
    opts.f = 1;
    opts.rs_mode = false;  // 3 servers: classic majority quorums
    opts.data_dir = dir.string();
    opts.admin = true;
    opts.health.probe_interval = 20 * kMillis;  // fast board refresh
    opts.replica.heartbeat_interval = 30 * kMillis;
    opts.replica.election_timeout_min = 300 * kMillis;
    opts.replica.election_timeout_max = 600 * kMillis;
    opts.replica.lease_duration = 250 * kMillis;

    auto started = node::TcpCluster::start(opts);
    ASSERT_TRUE(started.is_ok()) << started.status().to_string();
    cluster = std::move(started).value();

    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
      bool all = true;
      for (uint32_t g = 0; g < kGroups; ++g) {
        if (cluster->leader_server_of(g) < 0) all = false;
      }
      if (all) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no leaders";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    auto cn = cluster->start_client();
    ASSERT_TRUE(cn.is_ok()) << cn.status().to_string();
    cnode = cn.value();
    kv::KvClient::Options copts;
    copts.request_timeout = 2000 * kMillis;
    client = std::make_unique<kv::KvClient>(cnode, cluster->routing(), copts);
    cnode->loop().post([this] { cnode->set_handler(client.get()); });
  }

  Status put(const std::string& key, Bytes value) {
    std::promise<Status> done;
    auto fut = done.get_future();
    cnode->loop().post([&, key] {
      client->put(key, std::move(value), [&](Status s) { done.set_value(s); });
    });
    if (fut.wait_for(std::chrono::seconds(20)) != std::future_status::ready) {
      return Status::timeout("put " + key);
    }
    return fut.get();
  }

  void stop() {
    cluster.reset();  // joins every I/O thread, incl. the client node's loop
    client.reset();   // only then is the handler object safe to destroy
    std::filesystem::remove_all(dir);
  }
};

TEST(AdminHttp, EndpointsServeLiveClusterState) {
  ClusterFixture f;
  f.start();
  if (HasFatalFailure()) return;

  // Every server bound an ephemeral admin port.
  for (int s = 0; s < kServers; ++s) {
    ASSERT_NE(f.cluster->admin_port(s), 0) << "server " << s;
  }
  uint16_t port0 = f.cluster->admin_port(0);

  // /healthz: every server answers and reports ok (fresh cluster, no stall).
  for (int s = 0; s < kServers; ++s) {
    HttpReply h = http_get(f.cluster->admin_port(s), "/healthz");
    EXPECT_EQ(h.status, 200) << "server " << s << ": " << h.raw;
    EXPECT_NE(h.body.find("\"status\":\"ok\""), std::string::npos) << h.body;
    EXPECT_NE(h.body.find("\"loop_lag_us\""), std::string::npos) << h.body;
    // Worst-reactor aggregate: the document carries one entry per reactor.
    EXPECT_NE(h.body.find("\"reactors\":["), std::string::npos) << h.body;
    EXPECT_NE(h.body.find("\"reactor\":1"), std::string::npos) << h.body;
  }

  // Commit indices advance between scrapes as puts land in both groups.
  HttpReply before = http_get(port0, "/status");
  ASSERT_EQ(before.status, 200) << before.raw;
  int64_t before_ci[kGroups];
  for (uint32_t g = 0; g < kGroups; ++g) {
    before_ci[g] = commit_index_of(before.body, g);
    ASSERT_GE(before_ci[g], 0) << "group " << g << " missing from " << before.body;
  }
  for (int i = 0; i < 4; ++i) {
    for (uint32_t g = 0; g < kGroups; ++g) {
      ASSERT_TRUE(f.put(key_in_group(g, i), Bytes(512, static_cast<uint8_t>(i))).is_ok());
    }
  }
  HttpReply after = http_get(port0, "/status");
  ASSERT_EQ(after.status, 200) << after.raw;
  for (uint32_t g = 0; g < kGroups; ++g) {
    EXPECT_GT(commit_index_of(after.body, g), before_ci[g]) << "group " << g;
  }
  EXPECT_NE(after.body.find("\"wal\":{"), std::string::npos);
  EXPECT_NE(after.body.find("\"machine_bytes_flushed\":"), std::string::npos);
  // Reactor surface: count, backend, static placement, per-reactor WALs.
  EXPECT_NE(after.body.find("\"reactors\":2"), std::string::npos) << after.body;
  EXPECT_NE(after.body.find("\"io_backend\":\""), std::string::npos) << after.body;
  EXPECT_NE(after.body.find("\"placement\":[0,1]"), std::string::npos) << after.body;
  EXPECT_NE(after.body.find("\"wals\":["), std::string::npos) << after.body;

  // /metrics: Prometheus exposition with per-group labels from one shared
  // process-wide registry.
  HttpReply m = http_get(port0, "/metrics");
  ASSERT_EQ(m.status, 200) << m.raw;
  EXPECT_NE(m.raw.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(m.body.find("# TYPE rsp_"), std::string::npos);
  EXPECT_NE(m.body.find("group=\"0\""), std::string::npos);
  EXPECT_NE(m.body.find("group=\"1\""), std::string::npos);
  // Health + admission series are per-reactor now.
  EXPECT_NE(m.body.find("reactor=\"0\""), std::string::npos);
  EXPECT_NE(m.body.find("reactor=\"1\""), std::string::npos);

  // /traces/recent: JSON document (possibly empty list), both plain and
  // ?slow variants.
  HttpReply t = http_get(port0, "/traces/recent");
  EXPECT_EQ(t.status, 200);
  EXPECT_EQ(t.body.rfind("{\"traces\":[", 0), 0u) << t.body;
  EXPECT_EQ(http_get(port0, "/traces/recent?slow").status, 200);

  EXPECT_EQ(http_get(port0, "/nope").status, 404);

  f.stop();
}

// The resharding surface of the admin plane: /routing serves the machine's
// live RoutingView plus its per-shard write counters, and a completed
// migration shows up in the rsp_reshard_* / rsp_routing_epoch series exactly
// the way the balancer's operator dashboard consumes them.
TEST(AdminHttp, RoutingEndpointAndReshardMetrics) {
  ClusterFixture f;
  f.num_shards = 4;
  f.start();
  if (HasFatalFailure()) return;
  uint16_t port0 = f.cluster->admin_port(0);

  // Epoch-0 identity map on every machine, with per-shard write counters.
  for (int s = 0; s < kServers; ++s) {
    HttpReply r = http_get(f.cluster->admin_port(s), "/routing");
    ASSERT_EQ(r.status, 200) << "server " << s << ": " << r.raw;
    EXPECT_NE(r.body.find("\"server\":" + std::to_string(s)), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"epoch\":0"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"shards\":[0,1,0,1]"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"migrations\":[]"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"shard_writes\":[0,0,0,0]"), std::string::npos) << r.body;
  }

  // Find a key in shard 2 (owned by group 0), write it, and migrate the
  // shard to group 1.
  std::string key;
  for (int n = 0; key.empty(); ++n) {
    std::string probe = "route/" + std::to_string(n);
    if (kv::shard_of(probe, 4) == 2) key = probe;
  }
  ASSERT_TRUE(f.put(key, Bytes(256, 0x5a)).is_ok());
  int src = f.cluster->leader_server_of(0);
  ASSERT_GE(src, 0);
  kv::KvServer* srv = f.cluster->server(src, 0);
  f.cluster->endpoint(src, 0)->loop().post([srv] { srv->start_migration(2, 1); });

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  auto flipped = [&] {
    HttpReply r = http_get(port0, "/routing");
    return r.status == 200 &&
           r.body.find("\"shards\":[0,1,1,1]") != std::string::npos &&
           r.body.find("\"migrations\":[]") != std::string::npos;
  };
  while (!flipped() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(flipped()) << http_get(port0, "/routing").body;

  // The write counters moved off zero on the machines that applied the put.
  bool counted = false;
  for (int s = 0; s < kServers && !counted; ++s) {
    HttpReply r = http_get(f.cluster->admin_port(s), "/routing");
    counted = r.status == 200 &&
              r.body.find("\"shard_writes\":[0,0,0,0]") == std::string::npos;
  }
  EXPECT_TRUE(counted) << "no machine counted the shard-2 write";

  // Metrics: one completed migration, a non-zero moved-bytes total, and the
  // epoch gauge at the flip value (prepare + flip = 2) on the source leader.
  HttpReply m = http_get(f.cluster->admin_port(src), "/metrics");
  ASSERT_EQ(m.status, 200) << m.raw;
  size_t ok_at = m.body.find("rsp_reshard_migrations_total{");
  ASSERT_NE(ok_at, std::string::npos) << m.body.substr(0, 2048);
  EXPECT_NE(m.body.find("result=\"ok\""), std::string::npos);
  size_t moved_at = m.body.find("rsp_reshard_moved_bytes_total{");
  ASSERT_NE(moved_at, std::string::npos);
  // The series' sample value follows the label block on the same line.
  size_t line_end = m.body.find('\n', moved_at);
  std::string line = m.body.substr(moved_at, line_end - moved_at);
  double moved = std::stod(line.substr(line.rfind(' ') + 1));
  EXPECT_GT(moved, 0.0) << line;
  size_t epoch_at = m.body.find("rsp_routing_epoch{");
  ASSERT_NE(epoch_at, std::string::npos);
  line_end = m.body.find('\n', epoch_at);
  line = m.body.substr(epoch_at, line_end - epoch_at);
  EXPECT_GE(std::stod(line.substr(line.rfind(' ') + 1)), 2.0) << line;

  f.stop();
}

TEST(AdminHttp, SurvivesMalformedAndImpatientClients) {
  ClusterFixture f;
  f.start();
  if (HasFatalFailure()) return;
  uint16_t port = f.cluster->admin_port(0);

  EXPECT_EQ(http_raw(port, "BOGUS\r\n\r\n").status, 400);
  EXPECT_EQ(http_raw(port, "POST /metrics HTTP/1.1\r\n\r\n").status, 405);
  // An 8KiB+ request head is rejected, not buffered forever. The close may
  // race our remaining bytes into an RST that eats the reply, so accept
  // either the 431 or a dropped connection — the liveness probes below are
  // what prove the server survived.
  std::string huge = "GET /metrics HTTP/1.1\r\nX-Junk: " + std::string(16 * 1024, 'j');
  HttpReply big = http_raw(port, huge);
  EXPECT_TRUE(big.status == 431 || big.raw.empty()) << big.raw;
  // Half a request line then FIN: the server must just drop the connection.
  HttpReply early = http_raw(port, "GET /metr", /*shutdown_early=*/true);
  EXPECT_EQ(early.raw, "");
  // And stay alive for well-formed scrapes afterwards.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(http_get(port, "/healthz").status, 200) << "round " << i;
  }

  f.stop();
}

}  // namespace
}  // namespace rspaxos
