// Tests for the observability subsystem: registry semantics and thread
// safety, exporter golden output, metric-name sanitization, CounterView delta
// snapshots, histogram quantile interpolation, the sim-driven StatsReporter,
// and span tracing (unit-level and end-to-end over the simulated cluster).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "kv/cluster.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "sim/sim_network.h"
#include "sim/sim_world.h"

namespace rspaxos {
namespace {

using obs::Counter;
using obs::CounterView;
using obs::MetricsRegistry;
using obs::SpanContext;
using obs::Tracer;

// --- registry semantics ---

TEST(Metrics, FamilyHandlesAreStable) {
  MetricsRegistry reg;
  auto& fam = reg.counter_family("rsp_test_ops_total", "ops", {"node"});
  Counter& a = fam.with({"1"});
  Counter& b = fam.with({"1"});
  EXPECT_EQ(&a, &b);  // cached handles stay valid
  Counter& other = fam.with({"2"});
  EXPECT_NE(&a, &other);
  // Re-requesting the family returns the same object too.
  EXPECT_EQ(&fam, &reg.counter_family("rsp_test_ops_total", "ops", {"node"}));
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("rsp_test_total", "t");
  auto& h = reg.histogram("rsp_test_us", "t");
  c.inc(5);
  h.observe(100);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  EXPECT_EQ(h.count(), 0u);
  c.inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, NamesAreSanitizedToConvention) {
  MetricsRegistry reg;
  // Missing prefix and illegal characters both repair to rsp_ + [a-zA-Z0-9_];
  // the sanitized and literal spellings resolve to the same family.
  Counter& a = reg.counter("test_legacy_total", "t");
  Counter& b = reg.counter("rsp_test_legacy_total", "t");
  EXPECT_EQ(&a, &b);
  reg.counter("rsp_bad name-chars", "t").inc();
  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("rsp_test_legacy_total"), std::string::npos) << prom;
  // The unsanitized spelling must not surface as its own family.
  EXPECT_EQ(prom.find("# HELP test_legacy_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("rsp_bad_name_chars 1"), std::string::npos) << prom;
}

TEST(Metrics, CounterViewReportsOnlyOwnContribution) {
  Counter shared;
  shared.inc(5);  // prior owner's traffic
  CounterView view(&shared);
  EXPECT_EQ(view.value(), 0u);
  view.inc(2);
  view.inc();
  EXPECT_EQ(view.value(), 3u);
  EXPECT_EQ(shared.value(), 8u);  // global total keeps everything
  CounterView later(&shared);
  EXPECT_EQ(later.value(), 0u);  // a new owner starts from zero again
  CounterView null_view;
  null_view.inc(7);  // no backing counter: inert, not a crash
  EXPECT_EQ(null_view.value(), 0u);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  auto& fam = reg.counter_family("rsp_test_hammer_total", "t", {"node"});
  auto& hist = reg.histogram("rsp_test_hammer_us", "t");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fam, &hist, t] {
      // Each thread resolves the child itself: with() must be safe to race.
      Counter& c = fam.with({"7"});
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        hist.observe((t + 1) * 10);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fam.with({"7"}).value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- exporter golden output (private registry => fully deterministic) ---

MetricsRegistry& golden_registry(MetricsRegistry& reg) {
  auto& ops = reg.counter_family("rsp_test_ops_total", "operations", {"node"});
  ops.with({"1"}).inc(3);
  ops.with({"0"}).inc(1);
  reg.gauge("rsp_test_depth", "queue depth").set(-2);
  auto& lat = reg.histogram("rsp_test_lat_us", "latency");
  // Three identical samples make every quantile exactly 7.
  for (int i = 0; i < 3; ++i) lat.observe(7);
  return reg;
}

TEST(Metrics, PrometheusGoldenOutput) {
  MetricsRegistry reg;
  const char* want =
      "# HELP rsp_test_ops_total operations\n"
      "# TYPE rsp_test_ops_total counter\n"
      "rsp_test_ops_total{node=\"0\"} 1\n"
      "rsp_test_ops_total{node=\"1\"} 3\n"
      "# HELP rsp_test_depth queue depth\n"
      "# TYPE rsp_test_depth gauge\n"
      "rsp_test_depth -2\n"
      "# HELP rsp_test_lat_us latency\n"
      "# TYPE rsp_test_lat_us summary\n"
      "rsp_test_lat_us{quantile=\"0.5\"} 7\n"
      "rsp_test_lat_us{quantile=\"0.9\"} 7\n"
      "rsp_test_lat_us{quantile=\"0.99\"} 7\n"
      "rsp_test_lat_us_sum 21\n"
      "rsp_test_lat_us_count 3\n";
  EXPECT_EQ(golden_registry(reg).to_prometheus(), want);
}

TEST(Metrics, JsonGoldenOutput) {
  MetricsRegistry reg;
  const char* want =
      "{\"counters\":{\"rsp_test_ops_total\":["
      "{\"labels\":{\"node\":\"0\"},\"value\":1},"
      "{\"labels\":{\"node\":\"1\"},\"value\":3}]},"
      "\"gauges\":{\"rsp_test_depth\":[{\"labels\":{},\"value\":-2}]},"
      "\"histograms\":{\"rsp_test_lat_us\":[{\"labels\":{},\"count\":3,"
      "\"sum\":21,\"min\":7,\"max\":7,\"mean\":7,\"p50\":7,\"p90\":7,"
      "\"p99\":7}]}}";
  EXPECT_EQ(golden_registry(reg).to_json(), want);
}

TEST(Metrics, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter_family("rsp_test_esc_total", "t", {"k"}).with({"a\"b\\c\nd"}).inc();
  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("rsp_test_esc_total{k=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << prom;
}

TEST(Metrics, HelpTextIsEscaped) {
  MetricsRegistry reg;
  reg.counter("rsp_test_help_total", "line one\nand a \\ slash").inc();
  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# HELP rsp_test_help_total line one\\nand a \\\\ slash\n"),
            std::string::npos)
      << prom;
}

TEST(Metrics, HealthAndAdmissionSeriesCarryReactorLabel) {
  // A 2-reactor host registers its health gauges once per reactor and its
  // admission series once per group, each stamped with the owning reactor —
  // group 1 lives on reactor 1 under the g % R placement.
  sim::SimWorld world(7);
  kv::SimClusterOptions opts;
  opts.num_groups = 2;
  opts.reactors = 2;
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  std::string prom = MetricsRegistry::global().to_prometheus();
  EXPECT_NE(prom.find("rsp_health_loop_lag_p99_us{server=\"0\",reactor=\"0\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("rsp_health_loop_lag_p99_us{server=\"0\",reactor=\"1\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("rsp_health_stalled{server=\"0\",reactor=\"1\"}"),
            std::string::npos)
      << prom;
  // Admission series: {node, group, reactor}; group 1 -> reactor 1.
  size_t fam = prom.find("# TYPE rsp_admission_inflight gauge");
  ASSERT_NE(fam, std::string::npos) << prom;
  EXPECT_NE(prom.find("group=\"1\",reactor=\"1\"", fam), std::string::npos) << prom;
  EXPECT_NE(prom.find("group=\"0\",reactor=\"0\"", fam), std::string::npos) << prom;
}

TEST(Metrics, HistogramMergeFoldsExternalWindow) {
  MetricsRegistry reg;
  auto& hm = reg.histogram("rsp_test_merge_us", "t");
  hm.observe(10);
  Histogram side;
  side.record(30);
  side.record(50);
  hm.merge(side);
  Histogram all = hm.snapshot();
  EXPECT_EQ(all.count(), 3u);
  EXPECT_EQ(all.min(), 10);
  EXPECT_EQ(all.max(), 50);
}

// --- histogram quantile interpolation ---

TEST(HistogramQuantiles, InterpolatesWithinBuckets) {
  Histogram h;
  // 1..100 exact (sub-bucket range): quantiles should track ranks closely,
  // not jump to bucket midpoints.
  for (int v = 1; v <= 100; ++v) h.record(v);
  EXPECT_NEAR(static_cast<double>(h.value_at(0.5)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.value_at(0.9)), 90.0, 1.0);
  EXPECT_EQ(h.value_at(0.0), 1);
  EXPECT_EQ(h.value_at(1.0), 100);
}

TEST(HistogramQuantiles, OverflowBucketEdgeUsesObservedMax) {
  Histogram h;
  // Far beyond the last bucket's nominal range: the terminal bucket's upper
  // edge must be the observed max, never an overflowed shift.
  int64_t huge = std::numeric_limits<int64_t>::max() - 3;
  h.record(huge);
  h.record(huge);
  EXPECT_EQ(h.value_at(0.99), huge);
  EXPECT_EQ(h.max(), huge);
  EXPECT_LE(h.value_at(0.5), huge);
  EXPECT_GT(h.value_at(0.5), 0);
}

// --- StatsReporter over the simulator ---

TEST(Reporter, TicksOnSimTime) {
  sim::SimWorld world(3);
  sim::SimNetwork net(&world);
  MetricsRegistry reg;
  reg.counter("rsp_test_seen_total", "t").inc(9);
  obs::StatsReporter reporter(net.node(1), &reg, 10 * kMillis);
  reporter.start();
  world.run_for(105 * kMillis);
  // Ticks at 10,20,...,100 ms of sim time — deterministic.
  EXPECT_EQ(reporter.snapshots_taken(), 10u);
  EXPECT_NE(reporter.last_snapshot().find("rsp_test_seen_total 9"), std::string::npos);
  reporter.stop();
  world.run_for(100 * kMillis);
  EXPECT_EQ(reporter.snapshots_taken(), 10u);  // no ticks after stop()
}

TEST(Reporter, CallbackReceivesRegistry) {
  sim::SimWorld world(4);
  sim::SimNetwork net(&world);
  MetricsRegistry reg;
  reg.counter("rsp_test_cb_total", "t").inc(2);
  uint64_t calls = 0;
  uint64_t last_value = 0;
  obs::StatsReporter reporter(
      net.node(1), &reg, 20 * kMillis,
      [&](const MetricsRegistry&, TimeMicros) {
        calls++;
        last_value = reg.counter("rsp_test_cb_total", "t").value();
      });
  reporter.start();
  world.run_for(90 * kMillis);
  reporter.stop();
  EXPECT_EQ(calls, 4u);  // 20,40,60,80 ms
  EXPECT_EQ(last_value, 2u);
}

// --- tracer unit tests (private instances, span model) ---

TEST(Trace, BeginTraceMintsDistinctRoots) {
  Tracer tr(8);
  SpanContext a = tr.begin_trace("op", 1, 100);
  SpanContext b = tr.begin_trace("op", 1, 100);
  SpanContext c = tr.begin_trace("op", 2, 100);
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(b.trace_id, c.trace_id);
  EXPECT_NE(a.span_id, 0u);
  EXPECT_EQ(tr.active_count(), 3u);
}

TEST(Trace, SpanTreeLifecycle) {
  Tracer tr(8);
  SpanContext root = tr.begin_trace("commit", /*node=*/1, /*t_us=*/100);
  tr.set_slot(root.trace_id, 5);
  SpanContext enc = tr.start_span(root, "ec_encode", 1, 101);
  SpanContext net = tr.start_span(root, "net_accept:2", 1, 102);
  SpanContext fsync = tr.start_span(net, "wal_fsync", 2, 110);
  // Ends arrive out of order (follower acks race the leader).
  tr.end_span(fsync, 118);
  tr.end_span(enc, 104);
  tr.end_span(net, 120);
  EXPECT_EQ(tr.active_count(), 1u);
  tr.end_span(root, 150);
  EXPECT_EQ(tr.active_count(), 0u);
  ASSERT_EQ(tr.completed_count(), 1u);

  auto traces = tr.recent(1);
  ASSERT_EQ(traces.size(), 1u);
  const auto& t = traces[0];
  EXPECT_TRUE(t.done);
  EXPECT_EQ(t.slot, 5u);
  EXPECT_EQ(t.duration_us(), 50);
  ASSERT_EQ(t.spans.size(), 4u);
  // Spans come back sorted by start time regardless of completion order.
  for (size_t i = 1; i < t.spans.size(); ++i) {
    EXPECT_LE(t.spans[i - 1].start_us, t.spans[i].start_us);
  }
  // Tree shape: root <- {ec_encode, net_accept:2 <- wal_fsync}.
  const obs::TraceSpan* rs = t.find("commit");
  const obs::TraceSpan* es = t.find("ec_encode");
  const obs::TraceSpan* ns = t.find("net_accept:2");
  const obs::TraceSpan* fs = t.find("wal_fsync");
  ASSERT_TRUE(rs && es && ns && fs);
  EXPECT_EQ(rs->parent, 0u);
  EXPECT_EQ(es->parent, rs->id);
  EXPECT_EQ(ns->parent, rs->id);
  EXPECT_EQ(fs->parent, ns->id);
  EXPECT_EQ(fs->node, 2u);
  EXPECT_EQ(es->duration_us(), 3);
}

TEST(Trace, ParentWithZeroSpanAttachesToRoot) {
  Tracer tr(8);
  SpanContext root = tr.begin_trace("commit", 1, 0);
  // A receiver that only knows the trace id (no parent span survived the
  // hop) still lands its span under the root.
  SpanContext child = tr.start_span(SpanContext{root.trace_id, 0}, "late", 3, 10);
  ASSERT_TRUE(child.valid());
  tr.end_span(child, 12);
  tr.end_span(root, 20);
  auto traces = tr.recent(1);
  ASSERT_EQ(traces.size(), 1u);
  const obs::TraceSpan* late = traces[0].find("late");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->parent, traces[0].root);
}

TEST(Trace, UnknownAndInvalidContextsAreIgnored) {
  Tracer tr(8);
  EXPECT_FALSE(tr.start_span(SpanContext{}, "x", 1, 10).valid());
  EXPECT_FALSE(tr.start_span(SpanContext{12345, 1}, "x", 1, 10).valid());
  tr.end_span(SpanContext{}, 10);
  tr.end_span(SpanContext{12345, 1}, 10);
  EXPECT_EQ(tr.active_count(), 0u);
  EXPECT_EQ(tr.completed_count(), 0u);
}

TEST(Trace, RingEvictsOldestCompleted) {
  Tracer tr(2);
  struct Spec {
    uint64_t slot;
    int64_t dur;
  };
  for (Spec s : {Spec{1, 10}, Spec{2, 30}, Spec{3, 20}}) {
    SpanContext root = tr.begin_trace("op", 1, 0);
    tr.set_slot(root.trace_id, s.slot);
    tr.end_span(root, s.dur);
  }
  EXPECT_EQ(tr.completed_count(), 2u);  // slot 1 evicted
  auto traces = tr.slowest(10);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].slot, 2u);  // slowest first (30us)
  EXPECT_EQ(traces[1].slot, 3u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tr(8);
  tr.set_enabled(false);
  SpanContext root = tr.begin_trace("op", 1, 0);
  EXPECT_FALSE(root.valid());
  tr.end_span(root, 10);
  EXPECT_EQ(tr.active_count(), 0u);
  EXPECT_EQ(tr.completed_count(), 0u);
}

TEST(Trace, SlowOpsLandInSlowRing) {
  Tracer tr(8);
  tr.set_slow_threshold_us(100);
  SpanContext fast = tr.begin_trace("op", 1, 0);
  tr.end_span(fast, 50);
  SpanContext slow = tr.begin_trace("op", 1, 0);
  tr.set_slot(slow.trace_id, 7);
  tr.end_span(slow, 500);
  EXPECT_EQ(tr.completed_count(), 2u);
  EXPECT_EQ(tr.slow_count(), 1u);
  auto slows = tr.slow_recent(4);
  ASSERT_EQ(slows.size(), 1u);
  EXPECT_EQ(slows[0].slot, 7u);
  EXPECT_NE(tr.slow_json(4).find("\"slot\":7"), std::string::npos);
}

TEST(Trace, JsonShape) {
  Tracer tr(8);
  SpanContext root = tr.begin_trace("commit", 3, 100);
  tr.set_slot(root.trace_id, 9);
  SpanContext child = tr.start_span(root, "quorum_wait", 3, 120);
  tr.end_span(child, 200);
  tr.end_span(root, 250);
  std::string json = tr.recent_json(4);
  EXPECT_NE(json.find("{\"traces\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"slot\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"duration_us\":150"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"commit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"quorum_wait\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent\":"), std::string::npos) << json;
}

TEST(Trace, AmbientSpanScopeRestores) {
  EXPECT_FALSE(obs::current_span().valid());
  {
    obs::SpanScope outer(SpanContext{11, 22});
    EXPECT_EQ(obs::current_span().trace_id, 11u);
    {
      obs::SpanScope inner(SpanContext{33, 44});
      EXPECT_EQ(obs::current_span().trace_id, 33u);
    }
    EXPECT_EQ(obs::current_span().trace_id, 11u);
    EXPECT_EQ(obs::current_span().span_id, 22u);
  }
  EXPECT_FALSE(obs::current_span().valid());
}

// --- end-to-end: a commit through the simulated cluster leaves one
// connected span tree covering client, leader and acceptors ---

TEST(TraceE2E, CommittedPutHasConnectedSpanTree) {
  sim::SimWorld world(42);
  kv::SimClusterOptions opts;
  opts.replica.heartbeat_interval = 20 * kMillis;
  opts.replica.election_timeout_min = 150 * kMillis;
  opts.replica.election_timeout_max = 300 * kMillis;
  opts.replica.lease_duration = 100 * kMillis;
  opts.replica.max_clock_drift = 10 * kMillis;
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0);

  // Only the put below should mint traces from here on.
  Tracer::global().clear();
  Tracer::global().set_enabled(true);

  bool done = false;
  Status st = Status::ok();
  client->put("traced-key", to_bytes("traced-value"), [&](Status s) {
    st = s;
    done = true;
  });
  TimeMicros deadline = world.now() + 30 * kSeconds;
  while (!done && world.now() < deadline) world.run_for(5 * kMillis);
  ASSERT_TRUE(done);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_GE(Tracer::global().completed_count(), 1u);

  auto traces = Tracer::global().slowest(8);
  ASSERT_FALSE(traces.empty());
  bool found_full = false;
  for (const auto& t : traces) {
    EXPECT_TRUE(t.done);
    EXPECT_GE(t.duration_us(), 0);
    // Connectedness: every non-root span's parent exists in the same tree.
    for (const auto& s : t.spans) {
      if (s.id == t.root) {
        EXPECT_EQ(s.parent, 0u);
        continue;
      }
      bool parent_known =
          std::any_of(t.spans.begin(), t.spans.end(),
                      [&s](const obs::TraceSpan& p) { return p.id == s.parent; });
      EXPECT_TRUE(parent_known) << "orphan span " << s.name;
    }
    auto has = [&t](const std::string& name) { return t.find(name) != nullptr; };
    bool has_net = std::any_of(t.spans.begin(), t.spans.end(),
                               [](const obs::TraceSpan& s) {
                                 return s.name.rfind("net_accept:", 0) == 0;
                               });
    if (has("client_rpc") && has("commit") && has("ec_encode") && has("wal_fsync") &&
        has_net && has("quorum_wait") && has("apply")) {
      found_full = true;
      // Acceptance: the sequential leader phases account for the commit
      // (net/fsync spans nest inside quorum_wait and are not re-added).
      const obs::TraceSpan* commit = t.find("commit");
      int64_t chain = t.find("ec_encode")->duration_us() +
                      t.find("quorum_wait")->duration_us() +
                      t.find("apply")->duration_us();
      ASSERT_GT(commit->duration_us(), 0);
      double ratio = static_cast<double>(chain) /
                     static_cast<double>(commit->duration_us());
      EXPECT_GE(ratio, 0.9) << Tracer::global().slowest_json(8);
      EXPECT_LE(ratio, 1.1) << Tracer::global().slowest_json(8);
    }
  }
  EXPECT_TRUE(found_full)
      << "no trace contained the full client+leader+acceptor span set; dump: "
      << Tracer::global().slowest_json(8);
}

}  // namespace
}  // namespace rspaxos
