// Tests for the observability subsystem: registry semantics and thread
// safety, exporter golden output, CounterView delta snapshots, the sim-driven
// StatsReporter, and commit tracing (unit-level and end-to-end over the
// simulated cluster).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "kv/cluster.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "sim/sim_network.h"
#include "sim/sim_world.h"

namespace rspaxos {
namespace {

using obs::Counter;
using obs::CounterView;
using obs::MetricsRegistry;
using obs::Tracer;

// --- registry semantics ---

TEST(Metrics, FamilyHandlesAreStable) {
  MetricsRegistry reg;
  auto& fam = reg.counter_family("test_ops_total", "ops", {"node"});
  Counter& a = fam.with({"1"});
  Counter& b = fam.with({"1"});
  EXPECT_EQ(&a, &b);  // cached handles stay valid
  Counter& other = fam.with({"2"});
  EXPECT_NE(&a, &other);
  // Re-requesting the family returns the same object too.
  EXPECT_EQ(&fam, &reg.counter_family("test_ops_total", "ops", {"node"}));
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test_total", "t");
  auto& h = reg.histogram("test_us", "t");
  c.inc(5);
  h.observe(100);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  EXPECT_EQ(h.count(), 0u);
  c.inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, CounterViewReportsOnlyOwnContribution) {
  Counter shared;
  shared.inc(5);  // prior owner's traffic
  CounterView view(&shared);
  EXPECT_EQ(view.value(), 0u);
  view.inc(2);
  view.inc();
  EXPECT_EQ(view.value(), 3u);
  EXPECT_EQ(shared.value(), 8u);  // global total keeps everything
  CounterView later(&shared);
  EXPECT_EQ(later.value(), 0u);  // a new owner starts from zero again
  CounterView null_view;
  null_view.inc(7);  // no backing counter: inert, not a crash
  EXPECT_EQ(null_view.value(), 0u);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  auto& fam = reg.counter_family("test_hammer_total", "t", {"node"});
  auto& hist = reg.histogram("test_hammer_us", "t");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fam, &hist, t] {
      // Each thread resolves the child itself: with() must be safe to race.
      Counter& c = fam.with({"7"});
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        hist.observe((t + 1) * 10);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fam.with({"7"}).value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- exporter golden output (private registry => fully deterministic) ---

MetricsRegistry& golden_registry(MetricsRegistry& reg) {
  auto& ops = reg.counter_family("test_ops_total", "operations", {"node"});
  ops.with({"1"}).inc(3);
  ops.with({"0"}).inc(1);
  reg.gauge("test_depth", "queue depth").set(-2);
  auto& lat = reg.histogram("test_lat_us", "latency");
  // Three identical samples make every quantile exactly 7.
  for (int i = 0; i < 3; ++i) lat.observe(7);
  return reg;
}

TEST(Metrics, PrometheusGoldenOutput) {
  MetricsRegistry reg;
  const char* want =
      "# HELP test_ops_total operations\n"
      "# TYPE test_ops_total counter\n"
      "test_ops_total{node=\"0\"} 1\n"
      "test_ops_total{node=\"1\"} 3\n"
      "# HELP test_depth queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth -2\n"
      "# HELP test_lat_us latency\n"
      "# TYPE test_lat_us summary\n"
      "test_lat_us{quantile=\"0.5\"} 7\n"
      "test_lat_us{quantile=\"0.9\"} 7\n"
      "test_lat_us{quantile=\"0.99\"} 7\n"
      "test_lat_us_sum 21\n"
      "test_lat_us_count 3\n";
  EXPECT_EQ(golden_registry(reg).to_prometheus(), want);
}

TEST(Metrics, JsonGoldenOutput) {
  MetricsRegistry reg;
  const char* want =
      "{\"counters\":{\"test_ops_total\":["
      "{\"labels\":{\"node\":\"0\"},\"value\":1},"
      "{\"labels\":{\"node\":\"1\"},\"value\":3}]},"
      "\"gauges\":{\"test_depth\":[{\"labels\":{},\"value\":-2}]},"
      "\"histograms\":{\"test_lat_us\":[{\"labels\":{},\"count\":3,"
      "\"sum\":21,\"min\":7,\"max\":7,\"mean\":7,\"p50\":7,\"p90\":7,"
      "\"p99\":7}]}}";
  EXPECT_EQ(golden_registry(reg).to_json(), want);
}

TEST(Metrics, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter_family("test_esc_total", "t", {"k"}).with({"a\"b\\c"}).inc();
  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("test_esc_total{k=\"a\\\"b\\\\c\"} 1"), std::string::npos)
      << prom;
}

// --- StatsReporter over the simulator ---

TEST(Reporter, TicksOnSimTime) {
  sim::SimWorld world(3);
  sim::SimNetwork net(&world);
  MetricsRegistry reg;
  reg.counter("test_seen_total", "t").inc(9);
  obs::StatsReporter reporter(net.node(1), &reg, 10 * kMillis);
  reporter.start();
  world.run_for(105 * kMillis);
  // Ticks at 10,20,...,100 ms of sim time — deterministic.
  EXPECT_EQ(reporter.snapshots_taken(), 10u);
  EXPECT_NE(reporter.last_snapshot().find("test_seen_total 9"), std::string::npos);
  reporter.stop();
  world.run_for(100 * kMillis);
  EXPECT_EQ(reporter.snapshots_taken(), 10u);  // no ticks after stop()
}

TEST(Reporter, CallbackReceivesRegistry) {
  sim::SimWorld world(4);
  sim::SimNetwork net(&world);
  MetricsRegistry reg;
  reg.counter("test_cb_total", "t").inc(2);
  uint64_t calls = 0;
  uint64_t last_value = 0;
  obs::StatsReporter reporter(
      net.node(1), &reg, 20 * kMillis,
      [&](const MetricsRegistry&, TimeMicros) {
        calls++;
        last_value = reg.counter("test_cb_total", "t").value();
      });
  reporter.start();
  world.run_for(90 * kMillis);
  reporter.stop();
  EXPECT_EQ(calls, 4u);  // 20,40,60,80 ms
  EXPECT_EQ(last_value, 2u);
}

// --- tracer unit tests (private instances) ---

TEST(Trace, MintIsNonZeroAndUnique) {
  Tracer tr(8);
  obs::TraceId a = tr.mint(1);
  obs::TraceId b = tr.mint(1);
  obs::TraceId c = tr.mint(2);
  EXPECT_NE(a, obs::kNoTrace);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Trace, LifecycleAndSpanOrdering) {
  Tracer tr(8);
  obs::TraceId id = tr.mint(1);
  tr.begin(id, /*slot=*/5, /*node=*/1, /*t_us=*/100);
  // Events arrive out of timestamp order (follower acks race the leader).
  tr.event(id, "quorum", 1, 130);
  tr.event(id, "accept_recv", 2, 115);
  tr.event(id, "encode", 1, 101);
  EXPECT_EQ(tr.active_count(), 1u);
  tr.finish(id, 1, 150);
  EXPECT_EQ(tr.active_count(), 0u);
  ASSERT_EQ(tr.completed_count(), 1u);

  auto traces = tr.slowest(1);
  ASSERT_EQ(traces.size(), 1u);
  const auto& t = traces[0];
  EXPECT_TRUE(t.done);
  EXPECT_EQ(t.slot, 5u);
  EXPECT_EQ(t.duration_us(), 50);
  ASSERT_EQ(t.spans.size(), 5u);
  // slowest() returns spans sorted by timestamp regardless of arrival order.
  for (size_t i = 1; i < t.spans.size(); ++i) {
    EXPECT_LE(t.spans[i - 1].t_us, t.spans[i].t_us);
  }
  EXPECT_EQ(t.spans.front().phase, "propose");
  EXPECT_EQ(t.spans.back().phase, "applied");
}

TEST(Trace, UnknownIdsAndNoTraceAreIgnored) {
  Tracer tr(8);
  tr.event(obs::kNoTrace, "quorum", 1, 10);
  tr.event(12345, "quorum", 1, 10);  // never begun
  tr.finish(12345, 1, 20);
  EXPECT_EQ(tr.active_count(), 0u);
  EXPECT_EQ(tr.completed_count(), 0u);
}

TEST(Trace, RingEvictsOldestCompleted) {
  Tracer tr(2);
  struct Spec {
    uint64_t slot;
    int64_t dur;
  };
  for (Spec s : {Spec{1, 10}, Spec{2, 30}, Spec{3, 20}}) {
    obs::TraceId id = tr.mint(1);
    tr.begin(id, s.slot, 1, 0);
    tr.finish(id, 1, s.dur);
  }
  EXPECT_EQ(tr.completed_count(), 2u);  // slot 1 evicted
  auto traces = tr.slowest(10);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].slot, 2u);  // slowest first (30us)
  EXPECT_EQ(traces[1].slot, 3u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tr(8);
  tr.set_enabled(false);
  obs::TraceId id = tr.mint(1);
  tr.begin(id, 1, 1, 0);
  tr.finish(id, 1, 10);
  EXPECT_EQ(tr.active_count(), 0u);
  EXPECT_EQ(tr.completed_count(), 0u);
}

TEST(Trace, SlowestJsonShape) {
  Tracer tr(8);
  obs::TraceId id = tr.mint(3);
  tr.begin(id, 9, 3, 100);
  tr.finish(id, 3, 250);
  std::string json = tr.slowest_json(4);
  EXPECT_NE(json.find("{\"traces\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"slot\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"duration_us\":150"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phase\":\"propose\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"phase\":\"applied\""), std::string::npos) << json;
}

// --- end-to-end: a commit through the simulated cluster leaves an ordered,
// fully-phased trace in the global tracer ---

TEST(TraceE2E, CommittedPutHasOrderedPhases) {
  sim::SimWorld world(42);
  kv::SimClusterOptions opts;
  opts.replica.heartbeat_interval = 20 * kMillis;
  opts.replica.election_timeout_min = 150 * kMillis;
  opts.replica.election_timeout_max = 300 * kMillis;
  opts.replica.lease_duration = 100 * kMillis;
  opts.replica.max_clock_drift = 10 * kMillis;
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0);

  // Only the put below should mint traces from here on.
  Tracer::global().clear();
  Tracer::global().set_enabled(true);

  bool done = false;
  Status st = Status::ok();
  client->put("traced-key", to_bytes("traced-value"), [&](Status s) {
    st = s;
    done = true;
  });
  TimeMicros deadline = world.now() + 30 * kSeconds;
  while (!done && world.now() < deadline) world.run_for(5 * kMillis);
  ASSERT_TRUE(done);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_GE(Tracer::global().completed_count(), 1u);

  auto traces = Tracer::global().slowest(8);
  ASSERT_FALSE(traces.empty());
  bool found_full = false;
  for (const auto& t : traces) {
    EXPECT_TRUE(t.done);
    EXPECT_GE(t.duration_us(), 0);
    EXPECT_EQ(t.start_us, t.spans.front().t_us);
    EXPECT_EQ(t.end_us, t.spans.back().t_us);
    for (size_t i = 1; i < t.spans.size(); ++i) {
      EXPECT_LE(t.spans[i - 1].t_us, t.spans[i].t_us)
          << "span " << t.spans[i - 1].phase << " after " << t.spans[i].phase;
    }
    auto has = [&t](const char* phase) {
      return std::any_of(t.spans.begin(), t.spans.end(),
                         [phase](const obs::TraceSpan& s) { return s.phase == phase; });
    };
    if (has("propose") && has("encode") && has("accept_sent") && has("accept_recv") &&
        has("durable") && has("quorum") && has("committed") && has("applied")) {
      found_full = true;
    }
  }
  EXPECT_TRUE(found_full)
      << "no trace contained the full leader+follower phase set; dump: "
      << Tracer::global().slowest_json(8);
}

}  // namespace
}  // namespace rspaxos
