// Randomized property tests for the protocol's load-bearing pure functions:
//   - choose_phase1_value (§3.2 1c): the returned value is always decodable,
//     always the highest-ballot recoverable candidate, and any value that
//     *could have been chosen* (>= QW coded accepts, per Proposition 3
//     visible as >= X shares in any read quorum) is never skipped;
//   - Reed-Solomon: exhaustive any-m-of-n reconstruction for small codes;
//   - quorum algebra: every generated configuration keeps the intersection
//     invariant under membership arithmetic.
#include <gtest/gtest.h>

#include <map>

#include "consensus/config.h"
#include "consensus/single.h"
#include "ec/rs_code.h"
#include "util/rng.h"

namespace rspaxos::consensus {
namespace {

struct SeededCase : ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededCase, Phase1ChoiceIsSoundAndMaximal) {
  Rng rng(GetParam());
  // Random group: N in [3, 9], RS-max-X config for random feasible F.
  int n = 3 + static_cast<int>(rng.next_below(7));
  int max_f = (n - 1) / 2;
  int f = 1 + static_cast<int>(rng.next_below(static_cast<uint64_t>(max_f)));
  int x = n - 2 * f;

  // Create up to 3 candidate values with random ballots and random subsets
  // of acceptors holding their shares.
  struct Candidate {
    ValueId vid;
    Ballot ballot;
    Bytes payload;
    std::vector<Bytes> shares;
    int shares_present = 0;
  };
  const ec::RsCode& code = ec::RsCodeCache::get(x, n);
  int num_candidates = 1 + static_cast<int>(rng.next_below(3));
  std::vector<Candidate> cands;
  std::vector<PromiseEntry> entries;
  for (int c = 0; c < num_candidates; ++c) {
    Candidate cand;
    cand.vid = ValueId{static_cast<NodeId>(100 + c), rng.next_u64() | 1};
    cand.ballot = Ballot{static_cast<uint32_t>(1 + rng.next_below(50)),
                         static_cast<NodeId>(100 + c)};
    cand.payload.resize(1 + rng.next_below(300));
    rng.fill(cand.payload.data(), cand.payload.size());
    cand.shares = code.encode(cand.payload);
    // Each acceptor index independently holds this candidate's share with
    // probability 1/2 — but an acceptor can only hold ONE accepted value, so
    // later candidates overwrite earlier ones at the same index (higher
    // ballot wins like a real acceptor would).
    cands.push_back(std::move(cand));
  }
  // Assign per-acceptor accepted state: the candidate with the highest
  // ballot among those that "reached" the acceptor.
  for (int a = 0; a < n; ++a) {
    int best = -1;
    for (int c = 0; c < num_candidates; ++c) {
      if (rng.chance(0.5)) {
        if (best < 0 || cands[static_cast<size_t>(c)].ballot >
                            cands[static_cast<size_t>(best)].ballot) {
          best = c;
        }
      }
    }
    if (best < 0) continue;
    Candidate& cand = cands[static_cast<size_t>(best)];
    cand.shares_present++;
    PromiseEntry e;
    e.slot = 0;
    e.accepted_ballot = cand.ballot;
    e.share.vid = cand.vid;
    e.share.share_idx = static_cast<uint32_t>(a);
    e.share.x = static_cast<uint32_t>(x);
    e.share.n = static_cast<uint32_t>(n);
    e.share.value_len = cand.payload.size();
    e.share.data = cand.shares[static_cast<size_t>(a)];
    entries.push_back(std::move(e));
  }

  auto choice = choose_phase1_value(entries);
  ASSERT_TRUE(choice.is_ok());

  // Expected: the highest-ballot candidate with >= x shares present.
  const Candidate* expect = nullptr;
  for (const Candidate& c : cands) {
    if (c.shares_present >= x && (expect == nullptr || c.ballot > expect->ballot)) {
      expect = &c;
    }
  }
  if (expect == nullptr) {
    EXPECT_FALSE(choice.value().bound.has_value());
  } else {
    ASSERT_TRUE(choice.value().bound.has_value());
    EXPECT_EQ(choice.value().bound->vid, expect->vid);
    EXPECT_EQ(choice.value().bound->payload, expect->payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededCase, ::testing::Range<uint64_t>(1, 201));

TEST(RsExhaustive, EveryMSubsetOfSmallCodes) {
  Rng rng(99);
  for (int n = 2; n <= 6; ++n) {
    for (int m = 1; m <= n; ++m) {
      auto code = ec::RsCode::create(m, n);
      ASSERT_TRUE(code.is_ok());
      Bytes value(57);
      rng.fill(value.data(), value.size());
      auto shares = code.value().encode(value);
      // Iterate all C(n, m) subsets via bitmask.
      for (unsigned mask = 0; mask < (1u << n); ++mask) {
        if (__builtin_popcount(mask) != m) continue;
        std::map<int, Bytes> in;
        for (int i = 0; i < n; ++i) {
          if (mask & (1u << i)) in.emplace(i, shares[static_cast<size_t>(i)]);
        }
        auto out = code.value().decode(in, value.size());
        ASSERT_TRUE(out.is_ok()) << "m=" << m << " n=" << n << " mask=" << mask;
        ASSERT_EQ(out.value(), value) << "m=" << m << " n=" << n << " mask=" << mask;
      }
    }
  }
}

TEST(QuorumProperty, GeneratedConfigsAlwaysIntersectInX) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    int n = 2 + static_cast<int>(rng.next_below(10));
    auto choices = enumerate_quorum_choices(n);
    for (const QuorumChoice& qc : choices) {
      // Worst-case overlap of a QR-set and a QW-set out of n elements.
      int overlap = qc.qr + qc.qw - n;
      EXPECT_GE(overlap, qc.x);
      // And the failure bound leaves a full write quorum alive.
      EXPECT_LE(qc.f + std::max(qc.qr, qc.qw), n);
    }
  }
}

TEST(QuorumProperty, RsMaxXDominatesRedundancy) {
  // Among all feasible configs with the same F, the rs_max_x choice has the
  // (weakly) smallest redundancy n/x.
  for (int n : {5, 7, 9, 11, 13}) {
    auto choices = enumerate_quorum_choices(n);
    for (const QuorumChoice& qc : choices) {
      if (n - 2 * qc.f < 1) continue;
      int best_x = n - 2 * qc.f;
      EXPECT_LE(qc.x, best_x) << "n=" << n << " f=" << qc.f;
    }
  }
}

}  // namespace
}  // namespace rspaxos::consensus
