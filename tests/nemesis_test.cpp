// Adversarial safety tests: many seeded schedules with message loss,
// duplication, delay, partitions and acceptor crash/restart, asserting the
// paper's §3.1 guarantees:
//   Non-triviality — only proposed values are chosen;
//   Stability      — decisions never change;
//   Consistency    — at most one value is chosen per instance.
#include <gtest/gtest.h>

#include <optional>

#include "consensus/single.h"
#include "sim_harness.h"

namespace rspaxos::consensus {
namespace {

using testing::AcceptorHost;
using testing::ProposerHost;

struct NemesisResult {
  std::vector<ValueId> decisions;     // what each proposer decided (if any)
  std::vector<ValueId> proposed_ids;  // the value ids proposers created
};

// Runs `num_proposers` rival proposers against one RS-Paxos instance while a
// nemesis injects faults. Returns all decisions reached.
NemesisResult run_nemesis(uint64_t seed, const GroupConfig& cfg, int num_proposers,
                          double drop, double dup, bool crashes) {
  sim::SimWorld world(seed);
  sim::SimNetwork net(&world);
  sim::LinkParams chaos = sim::LinkParams::lan();
  chaos.drop_prob = drop;
  chaos.dup_prob = dup;
  chaos.jitter_us = 5000;
  chaos.latency_us = 2000;
  net.set_default_link(chaos);

  std::vector<std::unique_ptr<AcceptorHost>> acceptors;
  for (NodeId id : cfg.members) acceptors.push_back(std::make_unique<AcceptorHost>(&net, id));

  NemesisResult result;
  std::vector<std::unique_ptr<ProposerHost>> proposers;
  for (int i = 0; i < num_proposers; ++i) {
    NodeId pid = 200 + static_cast<NodeId>(i);
    SingleProposer::Options opts;
    opts.retransmit_interval = 40 * kMillis;
    opts.max_rounds = 200;
    proposers.push_back(std::make_unique<ProposerHost>(&net, pid, cfg, opts));
    // Stagger proposals to create genuine contention.
    world.schedule(static_cast<DurationMicros>(i) * 7 * kMillis, [&, i] {
      proposers[static_cast<size_t>(i)]->proposer().propose(
          Bytes{1, static_cast<uint8_t>(i)}, Bytes(256, static_cast<uint8_t>(i)),
          [&result](StatusOr<ValueId> r) {
            if (r.is_ok()) result.decisions.push_back(r.value());
          });
    });
  }

  if (crashes) {
    // Crash up to F acceptors mid-flight, restart them later (volatile state
    // lost, WAL kept).
    Rng rng(seed * 31 + 7);
    int f = cfg.f();
    for (int i = 0; i < f; ++i) {
      size_t victim = rng.next_below(acceptors.size());
      TimeMicros when = 20 * kMillis + static_cast<TimeMicros>(rng.next_below(200)) * kMillis;
      world.schedule(when, [&acceptors, victim] {
        if (acceptors[victim]->acceptor() != nullptr) acceptors[victim]->crash();
      });
      world.schedule(when + 150 * kMillis, [&acceptors, victim] {
        if (acceptors[victim]->acceptor() == nullptr) acceptors[victim]->restart();
      });
    }
  }

  world.run_until(120 * kSeconds);
  for (auto& p : proposers) {
    if (p->proposer().decided().has_value()) {
      // decided() must agree with the callback-reported value.
      result.proposed_ids.push_back(*p->proposer().decided());
    }
  }
  return result;
}

void assert_consistent(const NemesisResult& r, const std::string& label) {
  for (size_t i = 1; i < r.decisions.size(); ++i) {
    ASSERT_EQ(r.decisions[i], r.decisions[0])
        << label << ": two proposers decided different values";
  }
}

TEST(Nemesis, ContendingProposersCleanNetwork) {
  GroupConfig cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1).value();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto r = run_nemesis(seed, cfg, 3, 0.0, 0.0, false);
    ASSERT_GE(r.decisions.size(), 1u) << "seed " << seed << ": no progress";
    assert_consistent(r, "seed " + std::to_string(seed));
  }
}

TEST(Nemesis, LossAndDuplication) {
  GroupConfig cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1).value();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto r = run_nemesis(seed, cfg, 3, 0.15, 0.1, false);
    assert_consistent(r, "seed " + std::to_string(seed));
    EXPECT_GE(r.decisions.size(), 1u) << "seed " << seed;
  }
}

TEST(Nemesis, CrashRestartWithinF) {
  GroupConfig cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1).value();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto r = run_nemesis(seed, cfg, 2, 0.05, 0.05, true);
    assert_consistent(r, "seed " + std::to_string(seed));
  }
}

TEST(Nemesis, SevenNodeTwoFailures) {
  GroupConfig cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5, 6, 7}, 2).value();
  for (uint64_t seed = 100; seed <= 120; ++seed) {
    auto r = run_nemesis(seed, cfg, 3, 0.1, 0.05, true);
    assert_consistent(r, "seed " + std::to_string(seed));
  }
}

TEST(Nemesis, ClassicPaxosModeStaysConsistentToo) {
  GroupConfig cfg = GroupConfig::majority({1, 2, 3, 4, 5});
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto r = run_nemesis(seed, cfg, 3, 0.1, 0.1, true);
    assert_consistent(r, "seed " + std::to_string(seed));
  }
}

TEST(Nemesis, StabilityAcrossFullRestart) {
  // Decide, full-stop every acceptor, restart, re-propose with many seeds:
  // the original decision must always survive (stability via the WAL).
  GroupConfig cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1).value();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    sim::SimWorld world(seed);
    sim::SimNetwork net(&world);
    std::vector<std::unique_ptr<AcceptorHost>> acceptors;
    for (NodeId id : cfg.members) {
      acceptors.push_back(std::make_unique<AcceptorHost>(&net, id));
    }
    ProposerHost p1(&net, 200, cfg);
    std::optional<ValueId> first;
    p1.proposer().propose(Bytes{}, Bytes(128, 1), [&](StatusOr<ValueId> r) {
      if (r.is_ok()) first = r.value();
    });
    world.run_to_completion();
    ASSERT_TRUE(first.has_value()) << "seed " << seed;

    for (auto& a : acceptors) a->crash();
    for (auto& a : acceptors) a->restart();

    ProposerHost p2(&net, 201, cfg);
    std::optional<ValueId> second;
    p2.proposer().propose(Bytes{}, Bytes(16, 2), [&](StatusOr<ValueId> r) {
      if (r.is_ok()) second = r.value();
    });
    world.run_to_completion();
    ASSERT_TRUE(second.has_value()) << "seed " << seed;
    EXPECT_EQ(*second, *first) << "seed " << seed;
  }
}

TEST(Nemesis, NonTrivialityOnlyProposedValuesChosen) {
  GroupConfig cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1).value();
  for (uint64_t seed = 50; seed <= 60; ++seed) {
    auto r = run_nemesis(seed, cfg, 4, 0.1, 0.0, false);
    for (const ValueId& d : r.decisions) {
      // Decided vids must come from the proposer id space we created.
      EXPECT_GE(d.origin, 200u);
      EXPECT_LT(d.origin, 204u);
    }
  }
}

}  // namespace
}  // namespace rspaxos::consensus
