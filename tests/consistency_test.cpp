// Client-visible consistency tests over the full KV stack: read-your-writes,
// monotonic reads, acknowledged-write durability across failures, and
// agreement under concurrent writers — the end-to-end face of the paper's
// §3.1 safety guarantees.
#include <gtest/gtest.h>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

struct Fixture {
  sim::SimWorld world;
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit Fixture(uint64_t seed = 11, int groups = 1)
      : world(seed), cluster(&world, options(groups)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 400 * kMillis;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions options(int groups) {
    SimClusterOptions o;
    o.num_groups = groups;
    o.replica.heartbeat_interval = 20 * kMillis;
    o.replica.election_timeout_min = 150 * kMillis;
    o.replica.election_timeout_max = 300 * kMillis;
    o.replica.lease_duration = 100 * kMillis;
    o.replica.max_clock_drift = 10 * kMillis;
    return o;
  }

  template <typename Pred>
  bool run_until(Pred done, DurationMicros max = 30 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(2 * kMillis);
    return done();
  }
};

Bytes version_value(int v) {
  return to_bytes("version-" + std::to_string(1000 + v));
}

int parse_version(const Bytes& b) {
  std::string s = to_string(b);
  return std::stoi(s.substr(s.size() - 4)) - 1000;
}

TEST(Consistency, ReadYourWrites) {
  Fixture f;
  for (int v = 0; v < 20; ++v) {
    bool acked = false;
    f.client->put("k", version_value(v), [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      acked = true;
    });
    ASSERT_TRUE(f.run_until([&] { return acked; }));
    // The very next read must observe this write (the ack fires only after
    // the leader applied the entry).
    std::optional<int> got;
    f.client->get("k", [&](StatusOr<Bytes> r) {
      ASSERT_TRUE(r.is_ok());
      got = parse_version(r.value());
    });
    ASSERT_TRUE(f.run_until([&] { return got.has_value(); }));
    EXPECT_EQ(*got, v);
  }
}

TEST(Consistency, MonotonicReadsWhileWriting) {
  Fixture f;
  // Writer: 40 sequential versions. Reader: interleaved fast reads. The
  // observed versions must never go backwards.
  int next_version = 0;
  bool writer_done = false;
  std::function<void()> write_next = [&] {
    if (next_version >= 40) {
      writer_done = true;
      return;
    }
    int v = next_version++;
    f.client->put("mono", version_value(v), [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      write_next();
    });
  };
  write_next();

  auto reader = f.cluster.make_client(1);
  std::vector<int> observed;
  bool reader_stop = false;
  std::function<void()> read_next = [&] {
    if (reader_stop) return;
    reader->get("mono", [&](StatusOr<Bytes> r) {
      if (r.is_ok()) observed.push_back(parse_version(r.value()));
      read_next();
    });
  };
  read_next();

  ASSERT_TRUE(f.run_until([&] { return writer_done; }));
  reader_stop = true;
  f.world.run_for(500 * kMillis);

  ASSERT_GT(observed.size(), 5u);
  for (size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GE(observed[i], observed[i - 1])
        << "monotonic-read violation at read " << i;
  }
  EXPECT_EQ(observed.back(), 39);
}

TEST(Consistency, AcknowledgedWritesSurviveLeaderCrash) {
  Fixture f;
  constexpr int kKeys = 15;
  for (int i = 0; i < kKeys; ++i) {
    bool acked = false;
    f.client->put("key-" + std::to_string(i), version_value(i),
                  [&](Status s) { acked = s.is_ok(); });
    ASSERT_TRUE(f.run_until([&] { return acked; }));
  }
  f.world.run_for(300 * kMillis);  // commits spread to followers

  int old_leader = f.cluster.leader_server_of(0);
  f.cluster.crash_server(old_leader);
  ASSERT_TRUE(f.run_until([&] {
    int l = f.cluster.leader_server_of(0);
    return l >= 0 && l != old_leader;
  }));

  // Every acknowledged write must be readable with its exact value — these
  // reads exercise the recovery-read path on the new leader.
  for (int i = 0; i < kKeys; ++i) {
    std::optional<int> got;
    f.client->get("key-" + std::to_string(i), [&](StatusOr<Bytes> r) {
      ASSERT_TRUE(r.is_ok()) << "key-" << i << ": " << r.status().to_string();
      got = parse_version(r.value());
    });
    ASSERT_TRUE(f.run_until([&] { return got.has_value(); })) << "key-" << i;
    EXPECT_EQ(*got, i) << "key-" << i;
  }
}

TEST(Consistency, ImmediateCrashAfterAckNeverLosesTheWrite) {
  // The harshest §4.5 case: the ack races the crash — a write acknowledged
  // a moment before the leader dies must survive, because QW replicas logged
  // their shares durably before acking.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Fixture f(seed);
    bool acked = false;
    f.client->put("flash", version_value(7), [&](Status s) { acked = s.is_ok(); });
    ASSERT_TRUE(f.run_until([&] { return acked; }));
    int old_leader = f.cluster.leader_server_of(0);
    f.cluster.crash_server(old_leader);  // immediately, no grace period

    ASSERT_TRUE(f.run_until([&] {
      int l = f.cluster.leader_server_of(0);
      return l >= 0 && l != old_leader;
    })) << "seed " << seed;

    std::optional<int> got;
    f.client->get("flash", [&](StatusOr<Bytes> r) {
      if (r.is_ok()) got = parse_version(r.value());
    });
    ASSERT_TRUE(f.run_until([&] { return got.has_value(); })) << "seed " << seed;
    EXPECT_EQ(*got, 7) << "seed " << seed;
  }
}

TEST(Consistency, ConcurrentWritersConverge) {
  Fixture f;
  constexpr int kWriters = 6;
  std::vector<std::unique_ptr<KvClient>> writers;
  std::vector<bool> acked(kWriters, false);
  for (int w = 0; w < kWriters; ++w) {
    writers.push_back(f.cluster.make_client(w + 1));
  }
  for (int w = 0; w < kWriters; ++w) {
    writers[static_cast<size_t>(w)]->put("contended", version_value(w),
                                         [&acked, w](Status s) {
                                           EXPECT_TRUE(s.is_ok());
                                           acked[static_cast<size_t>(w)] = true;
                                         });
  }
  ASSERT_TRUE(f.run_until([&] {
    for (bool a : acked) {
      if (!a) return false;
    }
    return true;
  }));

  // All replicas' logs agree; repeated consistent reads return the same
  // final value, and it is one of the written ones.
  std::optional<int> first;
  for (int trial = 0; trial < 3; ++trial) {
    std::optional<int> got;
    f.client->consistent_get("contended", [&](StatusOr<Bytes> r) {
      ASSERT_TRUE(r.is_ok());
      got = parse_version(r.value());
    });
    ASSERT_TRUE(f.run_until([&] { return got.has_value(); }));
    EXPECT_GE(*got, 0);
    EXPECT_LT(*got, kWriters);
    if (!first.has_value()) {
      first = got;
    } else {
      EXPECT_EQ(*got, *first);
    }
  }
}

TEST(Consistency, FollowerRestartObservesSamePrefix) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    bool acked = false;
    f.client->put("p" + std::to_string(i), version_value(i),
                  [&](Status s) { acked = s.is_ok(); });
    ASSERT_TRUE(f.run_until([&] { return acked; }));
  }
  int leader = f.cluster.leader_server_of(0);
  int victim = (leader + 1) % 5;
  f.cluster.crash_server(victim);
  for (int i = 10; i < 20; ++i) {
    bool acked = false;
    f.client->put("p" + std::to_string(i), version_value(i),
                  [&](Status s) { acked = s.is_ok(); });
    ASSERT_TRUE(f.run_until([&] { return acked; }));
  }
  f.cluster.restart_server(victim);
  f.world.run_for(5 * kSeconds);

  // The restarted follower's store covers all 20 keys (WAL replay + §4.5
  // catch-up), each tracking the key's last write slot.
  const auto& store = f.cluster.server(victim, 0)->store();
  for (int i = 0; i < 20; ++i) {
    const auto* rec = store.find("p" + std::to_string(i));
    ASSERT_NE(rec, nullptr) << "p" << i;
    EXPECT_GT(rec->slot, 0u);
  }
}

TEST(Consistency, AtMostOneValidLeaseAtAnyInstant) {
  // The §4.3 lease argument: with drift bound δ respected, no two replicas
  // can both believe they hold the leadership lease — that exclusivity is
  // what makes fast reads safe. Step the simulation in small increments
  // through elections, partitions and heals, asserting the invariant at
  // every step.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f(seed);
    auto check = [&] {
      int holders = 0;
      for (int s = 0; s < 5; ++s) {
        auto* srv = f.cluster.server(s, 0);
        if (srv != nullptr && f.cluster.server_alive(s) &&
            srv->replica().lease_valid()) {
          holders++;
        }
      }
      ASSERT_LE(holders, 1) << "two lease holders, seed " << seed << " t="
                            << f.world.now();
    };
    // Background load so leases are actively maintained.
    bool stop = false;
    std::function<void()> loop = [&] {
      if (stop) return;
      f.client->put("lease-k", to_bytes("x"), [&](Status) { loop(); });
    };
    loop();

    // Phase 1: steady state.
    for (int i = 0; i < 100; ++i) {
      f.world.run_for(5 * kMillis);
      check();
    }
    // Phase 2: isolate the current leader (it must lose its lease before a
    // rival gains one).
    int leader = f.cluster.leader_server_of(0);
    ASSERT_GE(leader, 0);
    std::set<NodeId> a{kv::endpoint_id(leader, 0)}, b;
    for (int s = 0; s < 5; ++s) {
      if (s != leader) b.insert(kv::endpoint_id(s, 0));
    }
    f.cluster.network().partition(a, b);
    for (int i = 0; i < 300; ++i) {
      f.world.run_for(5 * kMillis);
      check();
    }
    // Phase 3: heal; the old leader must step down, still never two leases.
    f.cluster.network().heal_partitions();
    for (int i = 0; i < 300; ++i) {
      f.world.run_for(5 * kMillis);
      check();
    }
    stop = true;
    f.world.run_for(200 * kMillis);
  }
}

TEST(Consistency, MultiGroupIndependence) {
  // A crash in one group's leader must not disturb other groups' data.
  Fixture f(3, /*groups=*/4);
  for (int i = 0; i < 24; ++i) {
    bool acked = false;
    f.client->put("mg" + std::to_string(i), version_value(i),
                  [&](Status s) { acked = s.is_ok(); });
    ASSERT_TRUE(f.run_until([&] { return acked; }));
  }
  int victim = f.cluster.leader_server_of(0);
  f.cluster.crash_server(victim);
  ASSERT_TRUE(f.run_until([&] {
    for (int g = 0; g < 4; ++g) {
      int l = f.cluster.leader_server_of(g);
      if (l < 0 || l == victim) return false;
    }
    return true;
  }));
  for (int i = 0; i < 24; ++i) {
    std::optional<int> got;
    f.client->get("mg" + std::to_string(i), [&](StatusOr<Bytes> r) {
      ASSERT_TRUE(r.is_ok()) << "mg" << i << ": " << r.status().to_string();
      got = parse_version(r.value());
    });
    ASSERT_TRUE(f.run_until([&] { return got.has_value(); })) << "mg" << i;
    EXPECT_EQ(*got, i);
  }
}

}  // namespace
}  // namespace rspaxos::kv
