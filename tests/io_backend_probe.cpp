// Probe for scripts/check.sh --uring: exit 0 iff this build, on this kernel,
// would actually run the io_uring backend when asked for it — i.e. exactly
// the condition under which make_io_driver() would NOT fall back to epoll.
// Deliberately not a gtest: on hosts without io_uring the right outcome for
// the lane is "skip", not "fail".
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/io_driver.h"

int main() {
  ::setenv("RSPAXOS_IO_BACKEND", "uring", 1);
  const char* effective = rspaxos::util::io_backend_name();
  std::printf("requested=uring effective=%s kernel_supported=%d\n", effective,
              rspaxos::util::uring_supported() ? 1 : 0);
  return std::strcmp(effective, "uring") == 0 ? 0 : 1;
}
