// End-to-end KV store tests over the simulated cluster (§4): writes, the
// three read kinds, deletes, sharding, follower share storage, failover with
// recovery reads, and storage-cost accounting.
#include <gtest/gtest.h>

#include <array>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

struct KvFixture {
  sim::SimWorld world;
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit KvFixture(SimClusterOptions opts = {}, uint64_t seed = 42)
      : world(seed), cluster(&world, tuned(opts)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 500 * kMillis;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions tuned(SimClusterOptions opts) {
    opts.replica.heartbeat_interval = 20 * kMillis;
    opts.replica.election_timeout_min = 150 * kMillis;
    opts.replica.election_timeout_max = 300 * kMillis;
    opts.replica.lease_duration = 100 * kMillis;
    opts.replica.max_clock_drift = 10 * kMillis;
    return opts;
  }

  // Synchronous wrappers driving the simulation.
  Status put(const std::string& key, Bytes value) {
    std::optional<Status> out;
    client->put(key, std::move(value), [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  StatusOr<Bytes> get(const std::string& key, bool consistent = false) {
    std::optional<StatusOr<Bytes>> out;
    auto cb = [&](StatusOr<Bytes> r) { out = std::move(r); };
    if (consistent) {
      client->consistent_get(key, cb);
    } else {
      client->get(key, cb);
    }
    run_until([&] { return out.has_value(); });
    if (!out.has_value()) return Status::timeout("sim ended");
    return std::move(*out);
  }

  Status del(const std::string& key) {
    std::optional<Status> out;
    client->del(key, [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  template <typename Pred>
  void run_until(Pred done, DurationMicros max = 30 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(5 * kMillis);
  }
};

TEST(Kv, PutThenFastGet) {
  KvFixture f;
  ASSERT_TRUE(f.put("alpha", to_bytes("value-1")).is_ok());
  auto got = f.get("alpha");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(got.value()), "value-1");
}

TEST(Kv, GetMissingKeyIsNotFound) {
  KvFixture f;
  auto got = f.get("never-written");
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), Code::kNotFound);
}

TEST(Kv, OverwriteReturnsLatest) {
  KvFixture f;
  ASSERT_TRUE(f.put("k", to_bytes("v1")).is_ok());
  ASSERT_TRUE(f.put("k", to_bytes("v2")).is_ok());
  ASSERT_TRUE(f.put("k", to_bytes("v3")).is_ok());
  auto got = f.get("k");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(got.value()), "v3");
}

TEST(Kv, ConsistentGetMatchesFastGet) {
  KvFixture f;
  ASSERT_TRUE(f.put("k", to_bytes("same")).is_ok());
  auto fast = f.get("k", false);
  auto consistent = f.get("k", true);
  ASSERT_TRUE(fast.is_ok());
  ASSERT_TRUE(consistent.is_ok());
  EXPECT_EQ(fast.value(), consistent.value());
  // The consistent read committed a marker instance.
  int leader = f.cluster.leader_server_of(0);
  ASSERT_GE(leader, 0);
  EXPECT_GE(f.cluster.server(leader, 0)->stats().consistent_reads, 1u);
}

TEST(Kv, DeleteRemovesKey) {
  KvFixture f;
  ASSERT_TRUE(f.put("gone", to_bytes("x")).is_ok());
  ASSERT_TRUE(f.del("gone").is_ok());
  auto got = f.get("gone");
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), Code::kNotFound);
}

TEST(Kv, LargeValueRoundTrip) {
  KvFixture f;
  Rng rng(5);
  Bytes big(512 * 1024);
  rng.fill(big.data(), big.size());
  ASSERT_TRUE(f.put("big", big).is_ok());
  auto got = f.get("big");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), big);
}

TEST(Kv, EmptyValueRoundTrip) {
  KvFixture f;
  ASSERT_TRUE(f.put("empty", Bytes{}).is_ok());
  auto got = f.get("empty");
  ASSERT_TRUE(got.is_ok());
  EXPECT_TRUE(got.value().empty());
}

TEST(Kv, FollowersHoldOnlyShares) {
  KvFixture f;
  Bytes value(3000, 0xab);
  ASSERT_TRUE(f.put("shared", value).is_ok());
  f.world.run_for(500 * kMillis);  // let commits reach followers
  int leader = f.cluster.leader_server_of(0);
  ASSERT_GE(leader, 0);
  for (int s = 0; s < 5; ++s) {
    const LocalStore::Record* rec = f.cluster.server(s, 0)->store().find("shared");
    ASSERT_NE(rec, nullptr) << "server " << s;
    if (s == leader) {
      EXPECT_TRUE(rec->complete);
      EXPECT_EQ(rec->data.size(), 3000u);
    } else {
      EXPECT_FALSE(rec->complete);
      EXPECT_EQ(rec->data.size(), 1000u);  // X=3
      EXPECT_EQ(rec->full_len, 3000u);
    }
  }
}

TEST(Kv, StorageRedundancyMatchesTheory) {
  // Durable storage (§2.2): each replica flushes only its 1/X share, so the
  // on-disk redundancy is r = n/x = 5/3 (the paper's "both leader and
  // follower only need to flush the coded shares into disks"). The leader's
  // *in-memory* table additionally caches the full value, so residency is
  // 1 + (n-1)/x.
  KvFixture f;
  uint64_t flushed_before = f.cluster.total_flushed_bytes();
  Bytes value(30'000, 1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.put("key-" + std::to_string(i), value).is_ok());
  }
  f.world.run_for(500 * kMillis);
  uint64_t flushed = f.cluster.total_flushed_bytes() - flushed_before;
  double disk_r = static_cast<double>(flushed) / (5.0 * 30'000.0);
  EXPECT_NEAR(disk_r, 5.0 / 3.0, 0.15);  // + small header/metadata overhead

  uint64_t resident = 0;
  for (int s = 0; s < 5; ++s) resident += f.cluster.server(s, 0)->store().resident_bytes();
  double mem_r = static_cast<double>(resident) / (5.0 * 30'000.0);
  EXPECT_NEAR(mem_r, 1.0 + 4.0 / 3.0, 0.05);
}

TEST(Kv, ShardsSpreadAcrossGroups) {
  SimClusterOptions opts;
  opts.num_groups = 8;
  KvFixture f(opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(f.put("key/" + std::to_string(i), to_bytes("v" + std::to_string(i))).is_ok());
  }
  for (int i = 0; i < 40; ++i) {
    auto got = f.get("key/" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(to_string(got.value()), "v" + std::to_string(i));
  }
  // More than one group must actually hold data.
  int groups_used = 0;
  for (int g = 0; g < 8; ++g) {
    int leader = f.cluster.leader_server_of(g);
    ASSERT_GE(leader, 0);
    if (f.cluster.server(leader, g)->store().size() > 0) groups_used++;
  }
  EXPECT_GT(groups_used, 3);
}

TEST(Kv, DeterministicShardMapping) {
  EXPECT_EQ(shard_of("abc", 16), shard_of("abc", 16));
  size_t hits[4] = {0, 0, 0, 0};
  for (int i = 0; i < 1000; ++i) hits[shard_of("k" + std::to_string(i), 4)]++;
  for (size_t h : hits) EXPECT_GT(h, 100u);  // roughly uniform
}

// Golden vectors pinning the kShardHashVersion == 2 contract (FNV-1a 64 +
// fmix64 + Lemire reduction). Any change to these outputs reshards every
// key in a deployed cluster — see the contract comment in kv/client.h. The
// vectors cover the empty key, 1-byte, multi-byte, common prefixes, and
// power-of-two / prime / large shard counts.
TEST(Kv, ShardHashGoldenVectors) {
  ASSERT_EQ(kShardHashVersion, 2u) << "bumping the contract requires new vectors";
  struct Vector {
    const char* key;
    size_t num_shards;
    size_t shard;
  };
  constexpr Vector kVectors[] = {
      {"", 1, 0},           {"", 4, 3},           {"", 7, 6},
      {"", 16, 14},         {"", 4096, 3837},     {"a", 4, 2},
      {"a", 7, 3},          {"a", 16, 8},         {"a", 4096, 2090},
      {"abc", 4, 0},        {"abc", 7, 1},        {"abc", 16, 3},
      {"abc", 4096, 830},   {"key/0", 4, 3},      {"key/0", 7, 6},
      {"key/0", 16, 15},    {"key/0", 4096, 3856}, {"key/1", 4, 1},
      {"key/1", 7, 2},      {"key/1", 16, 6},     {"key/1", 4096, 1701},
      {"user/42", 4, 2},    {"user/42", 7, 4},    {"user/42", 16, 10},
      {"user/42", 4096, 2741}, {"the-quick-brown-fox", 4, 0},
      {"the-quick-brown-fox", 7, 0}, {"the-quick-brown-fox", 16, 0},
      {"the-quick-brown-fox", 4096, 221},
  };
  for (const auto& v : kVectors) {
    EXPECT_EQ(shard_of(v.key, v.num_shards), v.shard)
        << "key=\"" << v.key << "\" shards=" << v.num_shards;
  }
  // Every shard must be reachable (the v1 modulo never violated this, but
  // the reduction rewrite could have).
  for (size_t n : {2u, 3u, 5u, 8u}) {
    std::vector<bool> seen(n, false);
    for (int i = 0; i < 4096; ++i) seen[shard_of("probe" + std::to_string(i), n)] = true;
    for (size_t s = 0; s < n; ++s) EXPECT_TRUE(seen[s]) << n << "/" << s;
  }
}

// Failover on one shard must only disturb that shard's cached leader: the
// client keeps sending other shards' traffic to their unchanged leaders
// (§4.4's per-shard leader cache). spread_leaders puts each group's leader
// on a different machine, so killing shard 0's machine leaves the other
// shards' leaders alive.
TEST(Kv, LeaderCacheIsPerShardAcrossFailover) {
  SimClusterOptions opts;
  opts.num_groups = 4;
  opts.spread_leaders = true;
  KvFixture f(opts);
  // Touch every group once so the cache is warm for all shards.
  std::vector<std::string> shard_key(4);
  int covered = 0;
  for (int i = 0; covered < 4 && i < 4096; ++i) {
    std::string key = "warm/" + std::to_string(i);
    size_t g = shard_of(key, 4);
    if (!shard_key[g].empty()) continue;
    shard_key[g] = key;
    covered++;
    ASSERT_TRUE(f.put(key, to_bytes("v")).is_ok());
  }
  ASSERT_EQ(covered, 4);
  std::array<NodeId, 4> before{};
  for (size_t g = 0; g < 4; ++g) {
    before[g] = f.client->cached_leader(g);
    ASSERT_NE(before[g], kNoNode) << "shard " << g << " cache not warm";
  }

  int victim_server = f.cluster.leader_server_of(0);
  ASSERT_GE(victim_server, 0);
  // The point of the test: at least one other shard's leader lives elsewhere.
  int spread = 0;
  for (size_t g = 1; g < 4; ++g) {
    if (server_of_endpoint(before[g]) != victim_server) spread++;
  }
  ASSERT_GT(spread, 0) << "leaders all co-located; spread_leaders broken";

  f.cluster.crash_server(victim_server);
  f.run_until([&] {
    int l = f.cluster.leader_server_of(0);
    return l >= 0 && l != victim_server;
  });

  // Write to shard 0: its cache entry must move off the dead server.
  ASSERT_TRUE(f.put(shard_key[0], to_bytes("v2")).is_ok());
  EXPECT_NE(f.client->cached_leader(0), before[0]);
  EXPECT_EQ(server_of_endpoint(f.client->cached_leader(0)),
            f.cluster.leader_server_of(0));

  // Shards whose leader stayed on a live machine keep their entry untouched,
  // and a fresh write to them sticks with the cached leader (no redirects).
  for (size_t g = 1; g < 4; ++g) {
    if (server_of_endpoint(before[g]) == victim_server) continue;  // co-located
    EXPECT_EQ(f.client->cached_leader(g), before[g]) << "shard " << g;
    ASSERT_TRUE(f.put(shard_key[g], to_bytes("v3")).is_ok());
    EXPECT_EQ(f.client->cached_leader(g), before[g]) << "shard " << g;
  }
}

// Adopting a newer routing map must invalidate the leader cache of EXACTLY
// the shards whose owning group changed: moved shards must not keep sending
// to the old group's leader, and untouched shards must not be forced back
// through a round of kNotLeader discovery (the staleness bug this pins was a
// whole-cache flush on every epoch bump).
TEST(Kv, AdoptMapInvalidatesOnlyMovedShards) {
  SimClusterOptions opts;
  opts.num_groups = 4;
  opts.spread_leaders = true;
  KvFixture f(opts);
  // Warm every shard's cache entry.
  std::vector<std::string> shard_key(4);
  for (int i = 0, covered = 0; covered < 4 && i < 4096; ++i) {
    std::string key = "warm/" + std::to_string(i);
    size_t g = shard_of(key, 4);
    if (!shard_key[g].empty()) continue;
    shard_key[g] = key;
    covered++;
    ASSERT_TRUE(f.put(key, to_bytes("v")).is_ok());
  }
  std::array<NodeId, 4> before{};
  for (size_t s = 0; s < 4; ++s) {
    before[s] = f.client->cached_leader(s);
    ASSERT_NE(before[s], kNoNode) << "shard " << s;
  }

  // Epoch 1: shard 2 moves from group 2 to group 0; everything else stays.
  ShardMap next = f.client->routing().map;
  next.epoch += 1;
  next.shard_group[2] = 0;
  f.client->adopt_map(next);
  EXPECT_EQ(f.client->routing_epoch(), next.epoch);
  EXPECT_EQ(f.client->cached_leader(2), kNoNode) << "moved shard must drop its entry";
  for (size_t s : {0u, 1u, 3u}) {
    EXPECT_EQ(f.client->cached_leader(s), before[s]) << "shard " << s << " disturbed";
  }

  // A stale map (same epoch, different placement) must be ignored outright.
  ShardMap stale = next;
  stale.shard_group[1] = 0;
  f.client->adopt_map(stale);
  EXPECT_EQ(f.client->cached_leader(1), before[1]);
  EXPECT_EQ(f.client->routing().map.group_of(1), 1u);
}

TEST(Kv, FailoverServesOldDataViaRecoveryRead) {
  KvFixture f;
  Bytes value(6000, 0x2d);
  ASSERT_TRUE(f.put("precious", value).is_ok());
  f.world.run_for(500 * kMillis);

  int old_leader = f.cluster.leader_server_of(0);
  ASSERT_GE(old_leader, 0);
  f.cluster.crash_server(old_leader);

  // Wait for failover, then read: the new leader only has a share and must
  // perform a recovery read (§4.4).
  f.run_until([&] {
    int l = f.cluster.leader_server_of(0);
    return l >= 0 && l != old_leader;
  });
  int new_leader = f.cluster.leader_server_of(0);
  ASSERT_GE(new_leader, 0);

  auto got = f.get("precious");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), value);
  EXPECT_GE(f.cluster.server(new_leader, 0)->stats().recovery_reads, 1u);
}

TEST(Kv, WritesContinueAfterFailover) {
  KvFixture f;
  ASSERT_TRUE(f.put("a", to_bytes("1")).is_ok());
  int old_leader = f.cluster.leader_server_of(0);
  f.cluster.crash_server(old_leader);
  f.run_until([&] {
    int l = f.cluster.leader_server_of(0);
    return l >= 0 && l != old_leader;
  });
  // "When a new write request arrives, the leader can simply issue a new
  // RS-Paxos instance ... even if it has not observed the previous value"
  // (§4.5).
  ASSERT_TRUE(f.put("a", to_bytes("2")).is_ok());
  auto got = f.get("a");
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(to_string(got.value()), "2");
}

TEST(Kv, CrashedServerRecoversAndCatchesUp) {
  KvFixture f;
  ASSERT_TRUE(f.put("k1", to_bytes("v1")).is_ok());
  int leader = f.cluster.leader_server_of(0);
  int victim = (leader + 1) % 5;
  f.cluster.crash_server(victim);
  ASSERT_TRUE(f.put("k2", to_bytes("v2")).is_ok());
  ASSERT_TRUE(f.put("k3", to_bytes("v3")).is_ok());
  f.cluster.restart_server(victim);
  f.world.run_for(5 * kSeconds);
  // The restarted follower holds shares for all three keys.
  const auto& store = f.cluster.server(victim, 0)->store();
  EXPECT_NE(store.find("k1"), nullptr);
  EXPECT_NE(store.find("k2"), nullptr);
  EXPECT_NE(store.find("k3"), nullptr);
}

TEST(Kv, ToleratesFMinusOneFailuresTransparently) {
  KvFixture f;
  ASSERT_TRUE(f.put("k", to_bytes("before")).is_ok());
  int leader = f.cluster.leader_server_of(0);
  // Crash one non-leader: QW=4 of 5 still reachable, service continues.
  f.cluster.crash_server((leader + 2) % 5);
  ASSERT_TRUE(f.put("k", to_bytes("after")).is_ok());
  auto got = f.get("k");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(got.value()), "after");
}

TEST(Kv, ManyClientsInterleave) {
  KvFixture f;
  std::vector<std::unique_ptr<KvClient>> clients;
  KvClient::Options copts;
  copts.request_timeout = 500 * kMillis;
  for (int i = 0; i < 10; ++i) clients.push_back(f.cluster.make_client(i + 1, copts));
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    clients[static_cast<size_t>(i)]->put(
        "c" + std::to_string(i), Bytes(100, static_cast<uint8_t>(i)),
        [&](Status s) {
          EXPECT_TRUE(s.is_ok());
          done++;
        });
  }
  f.run_until([&] { return done == 10; });
  EXPECT_EQ(done, 10);
  for (int i = 0; i < 10; ++i) {
    auto got = f.get("c" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), Bytes(100, static_cast<uint8_t>(i)));
  }
}

TEST(Kv, PaxosModeClusterWorksIdentically) {
  SimClusterOptions opts;
  opts.rs_mode = false;
  KvFixture f(opts);
  ASSERT_TRUE(f.put("p", to_bytes("classic")).is_ok());
  auto got = f.get("p");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(got.value()), "classic");
  // In full-copy mode followers hold complete values.
  f.world.run_for(500 * kMillis);
  int leader = f.cluster.leader_server_of(0);
  for (int s = 0; s < 5; ++s) {
    const auto* rec = f.cluster.server(s, 0)->store().find("p");
    if (rec == nullptr) continue;
    if (s != leader) {
      EXPECT_EQ(rec->data.size(), 7u);
    }
  }
}

}  // namespace
}  // namespace rspaxos::kv
