// Elastic resharding over the simulated cluster (DESIGN.md §14): online
// shard migration under a skewed write workload with zero acked-write loss,
// crash of the source leader mid-copy (janitor abort + convergence), the
// background balancer moving a hot shard and spreading leaders, and the
// Zipfian generator actually skewing per-shard load the way the balancer's
// input assumes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"
#include "load/open_loop.h"

namespace rspaxos::kv {
namespace {

constexpr int kShards = 4;

struct ReshardFixture {
  sim::SimWorld world;
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit ReshardFixture(SimClusterOptions opts, uint64_t seed = 42)
      : world(seed), cluster(&world, tuned(opts)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 500 * kMillis;
    copts.max_attempts = 400;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions tuned(SimClusterOptions opts) {
    opts.num_shards = kShards;
    opts.replica.heartbeat_interval = 20 * kMillis;
    opts.replica.election_timeout_min = 150 * kMillis;
    opts.replica.election_timeout_max = 300 * kMillis;
    opts.replica.lease_duration = 100 * kMillis;
    opts.replica.max_clock_drift = 10 * kMillis;
    return opts;
  }

  Status put(const std::string& key, Bytes value) {
    std::optional<Status> out;
    client->put(key, std::move(value), [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  StatusOr<Bytes> get(const std::string& key) {
    std::optional<StatusOr<Bytes>> out;
    client->get(key, [&](StatusOr<Bytes> r) { out = std::move(r); });
    run_until([&] { return out.has_value(); });
    if (!out.has_value()) return Status::timeout("sim ended");
    return std::move(*out);
  }

  Status del(const std::string& key) {
    std::optional<Status> out;
    client->del(key, [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  template <typename Pred>
  void run_until(Pred done, DurationMicros max = 60 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(1 * kMillis);
  }

  /// Newest routing map any LIVE host has published.
  std::shared_ptr<const ShardMap> newest_map() const {
    std::shared_ptr<const ShardMap> best;
    for (int s = 0; s < cluster.options().num_servers; ++s) {
      if (!cluster.server_alive(s)) continue;
      auto* host = const_cast<SimCluster&>(cluster).host(s);
      if (host == nullptr) continue;
      auto m = host->routing()->snapshot();
      if (!best || m->epoch > best->epoch) best = std::move(m);
    }
    return best;
  }
};

/// The i-th distinct key (prefix "rs/") routing to `shard` under kShards.
std::string key_in_shard(uint32_t shard, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "rs/" + std::to_string(n);
    if (shard_of(key, kShards) == shard && found++ == i) return key;
  }
}

Bytes value_of(int version, size_t len = 512) {
  Bytes v(len, static_cast<uint8_t>('a' + version % 26));
  std::string tag = std::to_string(version);
  for (size_t i = 0; i < tag.size() && i < v.size(); ++i) v[i] = static_cast<uint8_t>(tag[i]);
  return v;
}

// The tentpole scenario: migrate a shard between groups while a skewed write
// workload keeps committing into it. Every write acked at ANY point — before,
// during, or after the move — must read back its exact last value from the
// new owner, and the source group must eventually hold none of the shard.
TEST(Reshard, MigrationCompletesUnderLoad) {
  SimClusterOptions opts;
  opts.num_groups = 2;
  ReshardFixture f(opts);
  // Identity map: shard 2 starts in group 0 (2 % 2); move it to group 1.
  const uint32_t kShard = 2, kFrom = 0, kTo = 1;

  // Seed the shard, plus one key that gets deleted pre-move (the copy must
  // not resurrect it at the destination).
  const int kKeys = 48;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) keys.push_back(key_in_shard(kShard, i));
  std::map<std::string, int> acked;  // key -> last acked version
  int version = 0;
  for (const auto& k : keys) {
    ++version;
    ASSERT_TRUE(f.put(k, value_of(version)).is_ok()) << k;
    acked[k] = version;
  }
  std::string doomed = key_in_shard(kShard, kKeys);
  ASSERT_TRUE(f.put(doomed, value_of(0)).is_ok());
  ASSERT_TRUE(f.del(doomed).is_ok());

  int src = f.cluster.leader_server_of(static_cast<int>(kFrom));
  ASSERT_GE(src, 0);
  f.cluster.server(src, static_cast<int>(kFrom))->start_migration(kShard, kTo);

  // Skewed write-through: hammer a small hot set of the migrating shard
  // (plus a rotating cold tail) until the flip lands. kRetry during the seal
  // window and kWrongShard after the flip are absorbed by the client — the
  // put either acks (and must survive) or fails (and carries no obligation).
  auto moved = [&] {
    auto m = f.newest_map();
    return m && m->group_of(kShard) == kTo && m->migrations.empty();
  };
  size_t during = 0;
  TimeMicros deadline = f.world.now() + 120 * kSeconds;
  for (size_t i = 0; !moved() && f.world.now() < deadline; ++i) {
    const std::string& k = (i % 4 != 3) ? keys[i % 3]  // hot 3 keys take 3/4
                                        : keys[i % keys.size()];
    ++version;
    if (f.put(k, value_of(version)).is_ok()) {
      acked[k] = version;
      ++during;
    }
  }
  ASSERT_TRUE(moved()) << "migration did not complete";
  EXPECT_GT(during, 0u) << "no write committed during the migration window";
  EXPECT_GE(f.newest_map()->epoch, 2u);  // prepare + flip

  // Zero acked-write loss: every acked key serves exactly its last acked
  // value from the new owner; the deleted key stays dead.
  for (const auto& [k, ver] : acked) {
    auto got = f.get(k);
    ASSERT_TRUE(got.is_ok()) << k;
    EXPECT_EQ(got.value(), value_of(ver)) << k;
  }
  auto dead = f.get(doomed);
  ASSERT_FALSE(dead.is_ok());
  EXPECT_EQ(dead.status().code(), Code::kNotFound);

  // The client converged onto the new map (it was redirected at least once
  // while chasing the old owner) and the source group GC'd the moved rows.
  EXPECT_GE(f.client->routing_epoch(), 2u);
  EXPECT_GT(f.client->stats().wrong_shard, 0u);
  f.run_until([&] {
    for (int s = 0; s < f.cluster.options().num_servers; ++s) {
      size_t leftover = 0;
      f.cluster.server(s, static_cast<int>(kFrom))
          ->store()
          .for_each([&](const std::string& k, const LocalStore::Record&) {
            if (!is_meta_key(k) && shard_of(k, kShards) == kShard) ++leftover;
          });
      if (leftover != 0) return false;
    }
    return true;
  });
  for (int s = 0; s < f.cluster.options().num_servers; ++s) {
    size_t leftover = 0;
    f.cluster.server(s, static_cast<int>(kFrom))
        ->store()
        .for_each([&](const std::string& k, const LocalStore::Record&) {
          if (!is_meta_key(k) && shard_of(k, kShards) == kShard) ++leftover;
        });
    EXPECT_EQ(leftover, 0u) << "server " << s << " kept rows after GC";
  }
}

// Crash the source-group leader mid-copy. The migration record it committed
// into the routing map is now orphaned; the NEXT source leader's janitor must
// abort it (unseal + remove the record) and the shard keeps serving from the
// original group with every previously acked write intact.
TEST(Reshard, CrashSourceLeaderMidCopyAbortsCleanly) {
  SimClusterOptions opts;
  opts.num_groups = 2;
  opts.spread_leaders = true;  // group 0's leader is not every group's leader
  ReshardFixture f(opts);
  const uint32_t kShard = 2, kFrom = 0, kTo = 1;

  // Enough data that the copy spans several stop-and-wait chunks — the crash
  // window below reliably lands mid-copy.
  const int kKeys = 200;
  std::map<std::string, int> acked;
  int version = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string k = key_in_shard(kShard, i);
    ++version;
    ASSERT_TRUE(f.put(k, value_of(version, 4096)).is_ok()) << k;
    acked[k] = version;
  }

  int src = f.cluster.leader_server_of(static_cast<int>(kFrom));
  ASSERT_GE(src, 0);
  KvServer* srv = f.cluster.server(src, static_cast<int>(kFrom));
  srv->start_migration(kShard, kTo);
  // Run until the prepare epoch is visible on ANOTHER machine (the meta
  // commit is durable cluster-wide), then kill the source leader while its
  // driver is still copying.
  int witness = (src + 1) % f.cluster.options().num_servers;
  f.run_until([&] { return f.cluster.host(witness)->routing()->epoch() >= 1; });
  ASSERT_GE(f.cluster.host(witness)->routing()->epoch(), 1u);
  ASSERT_TRUE(srv->migration_active()) << "copy finished before the crash window";
  f.cluster.crash_server(src);

  // New source leader -> janitor adopts the orphan -> abort: record removed,
  // shard still owned by the original group, seal (if any) lifted.
  f.run_until([&] {
    int l = f.cluster.leader_server_of(static_cast<int>(kFrom));
    if (l < 0 || l == src) return false;
    auto m = f.newest_map();
    return m && m->migrations.empty() && m->group_of(kShard) == kFrom;
  });
  auto m = f.newest_map();
  ASSERT_TRUE(m != nullptr);
  EXPECT_TRUE(m->migrations.empty()) << "orphaned migration not aborted";
  EXPECT_EQ(m->group_of(kShard), kFrom);
  int l = f.cluster.leader_server_of(static_cast<int>(kFrom));
  ASSERT_GE(l, 0);
  EXPECT_FALSE(f.cluster.server(l, static_cast<int>(kFrom))->shard_sealed(kShard));

  // The shard keeps serving: new writes commit, old acked writes survive
  // (recovery reads where the new leader holds only shares).
  std::string probe = key_in_shard(kShard, 0);
  ++version;
  ASSERT_TRUE(f.put(probe, value_of(version)).is_ok());
  acked[probe] = version;
  for (const auto& [k, ver] : acked) {
    auto got = f.get(k);
    ASSERT_TRUE(got.is_ok()) << k;
    ASSERT_FALSE(got.value().empty()) << k;
    EXPECT_EQ(got.value()[0], value_of(ver)[0]) << k;
  }

  // The crashed machine rejoins and catches up.
  f.cluster.restart_server(src);
  f.run_until([&] {
    auto* s0 = f.cluster.server(src, static_cast<int>(kFrom));
    return s0 != nullptr && s0->replica().state_ready();
  });
  EXPECT_TRUE(f.cluster.server(src, static_cast<int>(kFrom))->replica().state_ready());
}

// The background balancer (meta-leader-elected) notices one group absorbing
// the whole write load and migrates a shard off it without any operator
// involvement.
TEST(Reshard, BalancerMovesShardOffHotGroup) {
  SimClusterOptions opts;
  opts.num_groups = 2;
  opts.balancer = true;
  opts.balancer_opts.interval = 300 * kMillis;
  opts.balancer_opts.min_writes = 40;
  opts.balancer_opts.hot_ratio = 1.5;
  ReshardFixture f(opts);

  // Identity map: shards 0 and 2 both live in group 0. Drive all writes at
  // them (shard 0 hottest) — the balancer should shed group 0's second-
  // hottest shard (2) to idle group 1.
  std::string hot0 = key_in_shard(0, 0), hot1 = key_in_shard(0, 1);
  std::string warm = key_in_shard(2, 0);
  auto rebalanced = [&] {
    auto m = f.newest_map();
    if (!m || !m->migrations.empty()) return false;
    return m->group_of(0) == 1 || m->group_of(2) == 1;
  };
  TimeMicros deadline = f.world.now() + 120 * kSeconds;
  for (size_t i = 0; !rebalanced() && f.world.now() < deadline; ++i) {
    const std::string& k = (i % 3 == 2) ? warm : (i % 2 ? hot1 : hot0);
    ASSERT_TRUE(f.put(k, value_of(static_cast<int>(i), 128)).is_ok());
  }
  ASSERT_TRUE(rebalanced()) << "balancer never moved a shard";
  uint64_t proposed = 0;
  for (int s = 0; s < f.cluster.options().num_servers; ++s) {
    if (f.cluster.balancer(s)) proposed += f.cluster.balancer(s)->shard_moves_proposed();
  }
  EXPECT_GE(proposed, 1u);
  EXPECT_GE(f.newest_map()->epoch, 2u);

  // Data written to the moved shard before the move still serves after it.
  auto got = f.get(warm);
  ASSERT_TRUE(got.is_ok());
}

// Leader spreading: a cluster booted with every group led by server 0
// converges to a spread where no machine leads more than idle+slack groups.
TEST(Reshard, BalancerSpreadsLeaders) {
  SimClusterOptions opts;
  opts.num_groups = 4;
  opts.spread_leaders = false;  // server 0 boots as leader of all 4 groups
  opts.balancer = true;
  opts.balancer_opts.interval = 300 * kMillis;
  opts.balancer_opts.move_shards = false;
  opts.balancer_opts.spread_leaders = true;
  opts.balancer_opts.leader_slack = 2;
  ReshardFixture f(opts);

  auto max_led = [&] {
    std::vector<int> led(static_cast<size_t>(f.cluster.options().num_servers), 0);
    for (int g = 0; g < f.cluster.options().num_groups; ++g) {
      int l = f.cluster.leader_server_of(g);
      if (l < 0) return 1 << 20;  // mid-election; not converged
      led[static_cast<size_t>(l)]++;
    }
    int m = 0;
    for (int c : led) m = std::max(m, c);
    return m;
  };
  ASSERT_EQ(max_led(), 4) << "expected server 0 to lead every group at boot";
  f.run_until([&] { return max_led() <= 2; }, 120 * kSeconds);
  EXPECT_LE(max_led(), 2) << "balancer failed to spread leaders";
  uint64_t moves = 0;
  for (int s = 0; s < f.cluster.options().num_servers; ++s) {
    if (f.cluster.balancer(s)) moves += f.cluster.balancer(s)->leader_moves_proposed();
  }
  EXPECT_GE(moves, 1u);
}

// The Zipfian generator option: per-shard applied-write counters (the
// balancer's input signal) must match the analytic Zipf mass of the keys
// hashed into each shard — i.e. the skew is real, not just a different
// uniform.
TEST(Reshard, ZipfWorkloadSkewsShardLoad) {
  sim::SimWorld world(7);
  SimClusterOptions opts = ReshardFixture::tuned({});
  opts.num_groups = 1;  // routing is not under test here
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  KvClient::Options copts;
  copts.request_timeout = 500 * kMillis;
  auto client = cluster.make_client(0, copts);
  NodeContext* ctx = cluster.network().node(kClientBase);

  load::OpenLoopSpec spec;
  spec.qps = 500;
  spec.value_size = 128;
  spec.key_space = 256;
  spec.zipf_s = 1.3;
  spec.duration = 2 * kSeconds;
  load::OpenLoopGen gen(ctx, client.get(), spec);
  bool finished = false;
  gen.start([&finished] { finished = true; });
  TimeMicros deadline = world.now() + 60 * kSeconds;
  while (!finished && world.now() < deadline) world.run_for(5 * kMillis);
  ASSERT_TRUE(finished);
  ASSERT_GT(gen.recorder().ok(), 500u);

  // Analytic per-shard mass under Zipf(1.3) over the generator's key space.
  double expect[kShards] = {0, 0, 0, 0};
  double norm = 0;
  for (int r = 0; r < spec.key_space; ++r) norm += 1.0 / std::pow(r + 1.0, spec.zipf_s);
  for (int r = 0; r < spec.key_space; ++r) {
    expect[shard_of("k-" + std::to_string(r), kShards)] +=
        (1.0 / std::pow(r + 1.0, spec.zipf_s)) / norm;
  }
  uint64_t counts[kShards] = {0, 0, 0, 0};
  uint64_t total = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    counts[s] = cluster.host(0)->shard_writes(s);
    total += counts[s];
  }
  ASSERT_GT(total, 0u);
  for (uint32_t s = 0; s < kShards; ++s) {
    double got = static_cast<double>(counts[s]) / static_cast<double>(total);
    EXPECT_NEAR(got, expect[s], 0.06) << "shard " << s;
  }
  // The shard holding the hottest key dominates under s = 1.3 (rank-0 mass
  // alone is ~25%); uniform load would put every shard near 25%.
  uint32_t hot = static_cast<uint32_t>(shard_of("k-0", kShards));
  EXPECT_GT(expect[hot], 0.3) << "test geometry broken: hot mass too diluted";
  for (uint32_t s = 0; s < kShards; ++s) {
    if (s != hot) {
      EXPECT_GT(counts[hot], counts[s]);
    }
  }
}

}  // namespace
}  // namespace rspaxos::kv
