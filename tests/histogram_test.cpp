// Focused tests for the log-bucketed histogram: edge quantiles (q=0 / q=1
// exact min/max), record/merge round-trips, relative-error bounds at bucket
// boundaries, and clear().
#include <gtest/gtest.h>

#include <cstdint>

#include "util/histogram.h"

namespace rspaxos {
namespace {

TEST(Histogram, EmptyReturnsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.sum(), 0.0);
  for (double q : {0.0, 0.5, 1.0}) EXPECT_EQ(h.value_at(q), 0);
}

TEST(Histogram, EdgeQuantilesAreExactMinMax) {
  Histogram h;
  h.record(13);
  h.record(7777);
  h.record(123456789);
  // Interior quantiles are bucket midpoints, but the extremes must be the
  // true observed values regardless of bucket width.
  EXPECT_EQ(h.value_at(0.0), 13);
  EXPECT_EQ(h.value_at(-1.0), 13);
  EXPECT_EQ(h.value_at(1.0), 123456789);
  EXPECT_EQ(h.value_at(2.0), 123456789);
}

TEST(Histogram, SingleValueIsEveryQuantile) {
  Histogram h;
  h.record(4242);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    int64_t v = h.value_at(q);
    EXPECT_NEAR(static_cast<double>(v), 4242.0, 4242.0 * 0.02) << "q=" << q;
  }
  EXPECT_EQ(h.value_at(0.0), 4242);  // exact at the edges
  EXPECT_EQ(h.value_at(1.0), 4242);
}

TEST(Histogram, SmallValuesAreExact) {
  // Indices below one sub-bucket span (64) map 1:1 to buckets.
  Histogram h;
  for (int64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.value_at(0.0), 0);
  EXPECT_EQ(h.value_at(1.0), 63);
  EXPECT_EQ(h.value_at(0.5), 31);  // rank 32 of 0..63 -> bucket 31, exact
}

TEST(Histogram, BucketBoundaryRelativeError) {
  // 127 is the last exact-ish bucket of its octave; 128 starts the next
  // octave (width 2); 129 shares 128's bucket. All must stay within ~2%.
  for (int64_t v : {127, 128, 129, 255, 256, 257, 16383, 16384, 16385}) {
    Histogram h;
    h.record(v);
    int64_t got = h.value_at(0.5);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(v),
                static_cast<double>(v) * 0.02)
        << "v=" << v;
    // The midpoint is clamped into [min,max], so a single sample can never
    // report a value outside what was observed.
    EXPECT_GE(got, h.min());
    EXPECT_LE(got, h.max());
  }
}

TEST(Histogram, PercentileRoundTrip) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 0.01);
  EXPECT_NEAR(h.sum(), 500500.0, 0.01);
  struct {
    double q;
    double want;
  } cases[] = {{0.10, 100}, {0.50, 500}, {0.90, 900}, {0.99, 990}};
  for (auto [q, want] : cases) {
    EXPECT_NEAR(static_cast<double>(h.value_at(q)), want, want * 0.02 + 2.0)
        << "q=" << q;
  }
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, both;
  for (int64_t v = 1; v <= 500; ++v) {
    a.record(v);
    both.record(v);
  }
  for (int64_t v = 501; v <= 1000; ++v) {
    b.record(v * 7);
    both.record(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.value_at(q), both.value_at(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeIntoEmptyAdoptsMinMax) {
  Histogram empty, src;
  src.record(42);
  src.record(9000);
  empty.merge(src);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 42);
  EXPECT_EQ(empty.max(), 9000);
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.record(v);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.value_at(0.5), 0);
  // Usable again after clear.
  h.record(77);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.value_at(1.0), 77);
}

}  // namespace
}  // namespace rspaxos
