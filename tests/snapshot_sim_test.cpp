// Snapshot + log-compaction integration tests over the simulated cluster
// (§4.5 generalized): checkpoints truncate the WAL prefix, restarts replay
// only the post-snapshot suffix, replicas whose gap predates the leader's log
// start converge via InstallSnapshot, and share-cache GC gated on the
// snapshot watermark never breaks reads.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

struct SnapFixture {
  sim::SimWorld world;
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit SnapFixture(SimClusterOptions opts = {}, uint64_t seed = 42)
      : world(seed), cluster(&world, tuned(opts)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 500 * kMillis;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions tuned(SimClusterOptions opts) {
    opts.replica.heartbeat_interval = 20 * kMillis;
    opts.replica.election_timeout_min = 150 * kMillis;
    opts.replica.election_timeout_max = 300 * kMillis;
    opts.replica.lease_duration = 100 * kMillis;
    opts.replica.max_clock_drift = 10 * kMillis;
    return opts;
  }

  Status put(const std::string& key, Bytes value) {
    std::optional<Status> out;
    client->put(key, std::move(value), [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  StatusOr<Bytes> get(const std::string& key) {
    std::optional<StatusOr<Bytes>> out;
    client->get(key, [&](StatusOr<Bytes> r) { out = std::move(r); });
    run_until([&] { return out.has_value(); });
    if (!out.has_value()) return Status::timeout("sim ended");
    return std::move(*out);
  }

  template <typename Pred>
  void run_until(Pred done, DurationMicros max = 30 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(5 * kMillis);
  }

  int leader() const { return cluster.leader_server_of(0); }
  consensus::Replica& replica(int s) { return cluster.server(s, 0)->replica(); }
};

Bytes value_for(int i) {
  return Bytes(256, static_cast<uint8_t>('a' + (i % 26)));
}

// Leader's complete rows as a plain map, for cross-run state comparison.
std::map<std::string, Bytes> leader_state(SnapFixture& f) {
  int l = f.leader();
  EXPECT_GE(l, 0);
  std::map<std::string, Bytes> out;
  f.cluster.server(l, 0)->store().for_each(
      [&](const std::string& k, const LocalStore::Record& r) {
        if (r.complete) out[k] = r.data;
      });
  return out;
}

TEST(SnapshotSim, CheckpointTruncatesWalAndRestartReplaysOnlySuffix) {
  SimClusterOptions opts;
  opts.replica.checkpoint_interval_slots = 16;
  SnapFixture f(opts);

  const int kKeys = 60;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(f.put("k" + std::to_string(i), value_for(i)).is_ok()) << i;
  }
  // Let offers propagate so every node saves its fragment and compacts.
  f.run_until([&] {
    for (int s = 0; s < 5; ++s) {
      if (f.cluster.wal(s, 0).truncated_bytes() == 0) return false;
    }
    return true;
  });

  int leader = f.leader();
  ASSERT_GE(leader, 0);
  EXPECT_GE(f.replica(leader).stats().checkpoints, 1u);
  for (int s = 0; s < 5; ++s) {
    EXPECT_GT(f.cluster.wal(s, 0).truncated_bytes(), 0u) << "server " << s;
    EXPECT_GT(f.replica(s).snapshot_applied(), 0u) << "server " << s;
    // Per-node snapshot storage is the coded fragment, ~|state|/X — far
    // smaller than the full image (X = 3 here).
    EXPECT_GT(f.cluster.snap_store(s, 0).stored_bytes(), 0u);
    EXPECT_LT(f.cluster.snap_store(s, 0).stored_bytes(),
              static_cast<uint64_t>(kKeys) * 256)
        << "fragment should be a fraction of full state";
  }

  // The surviving WAL holds only the compaction head plus the post-snapshot
  // suffix — far fewer records than the total slots ever appended.
  int follower = (leader + 1) % 5;
  size_t records = 0;
  f.cluster.wal(follower, 0).replay([&](BytesView) { records++; });
  EXPECT_LT(records, static_cast<size_t>(kKeys))
      << "restart must replay only the post-snapshot suffix";

  // Restart that follower: it reconstructs the base image from fragments,
  // replays the suffix, and converges.
  consensus::Slot target = f.replica(leader).last_applied();
  f.cluster.crash_server(follower);
  f.world.run_for(200 * kMillis);
  f.cluster.restart_server(follower);
  f.run_until([&] {
    return f.replica(follower).state_ready() &&
           f.replica(follower).last_applied() >= target;
  });
  EXPECT_TRUE(f.replica(follower).state_ready());
  EXPECT_GE(f.replica(follower).last_applied(), target);
  EXPECT_GE(f.replica(follower).stats().snapshot_installs, 1u);
  EXPECT_EQ(f.cluster.server(follower, 0)->store().size(),
            f.cluster.server(leader, 0)->store().size());

  // Reads still serve every value written before the snapshot.
  for (int i : {0, 7, 31, kKeys - 1}) {
    auto got = f.get("k" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << "k" << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i));
  }
}

// Satellite: a replica partitioned long enough that its gap falls below the
// leader's log start converges through InstallSnapshot, and the final state
// matches a no-snapshot control run byte for byte.
TEST(SnapshotSim, LaggingReplicaConvergesViaInstallSnapshot) {
  auto run_workload = [](SnapFixture& f, bool with_partition) {
    const int kPhase1 = 20, kTotal = 80;
    for (int i = 0; i < kPhase1; ++i) {
      ASSERT_TRUE(f.put("k" + std::to_string(i), value_for(i)).is_ok());
    }
    if (with_partition) {
      std::set<NodeId> lagging{endpoint_id(4, 0)};
      std::set<NodeId> rest;
      for (int s = 0; s < 4; ++s) rest.insert(endpoint_id(s, 0));
      f.cluster.network().partition(lagging, rest);
    }
    for (int i = kPhase1; i < kTotal; ++i) {
      ASSERT_TRUE(f.put("k" + std::to_string(i % 40), value_for(i)).is_ok());
    }
  };

  SimClusterOptions opts;
  opts.replica.checkpoint_interval_slots = 16;
  SnapFixture f(opts);
  run_workload(f, /*with_partition=*/true);

  int leader = f.leader();
  ASSERT_GE(leader, 0);
  ASSERT_NE(leader, 4);
  // Wait until the leader's log start has moved past the lagging node's
  // applied index: catch-up alone can no longer close the gap.
  f.run_until([&] {
    return f.replica(leader).log_start() > f.replica(4).last_applied() + 1;
  });
  ASSERT_GT(f.replica(leader).log_start(), f.replica(4).last_applied() + 1)
      << "gap must predate the leader's log start for this test to bite";

  f.cluster.network().heal_partitions();
  consensus::Slot target = f.replica(leader).last_applied();
  f.run_until([&] { return f.replica(4).last_applied() >= target; });
  EXPECT_GE(f.replica(4).last_applied(), target);
  EXPECT_GE(f.replica(4).stats().snapshot_installs, 1u)
      << "the gap can only close through InstallSnapshot";

  // Control run: identical workload, snapshots off, no partition. The final
  // KV state must be identical — compaction changes cost, not semantics.
  SimClusterOptions control_opts;
  control_opts.replica.checkpoint_interval_slots = 0;
  SnapFixture control(control_opts);
  run_workload(control, /*with_partition=*/false);

  auto snap_state = leader_state(f);
  auto control_state = leader_state(control);
  EXPECT_FALSE(snap_state.empty());
  EXPECT_EQ(snap_state, control_state);
}

// Satellite: share-cache GC is gated on the snapshot watermark, so dropping
// old shares never loses data — after a failover the new leader still serves
// every key, reconstructing pre-snapshot values from the checkpoint image.
TEST(SnapshotSim, GatedShareGcKeepsDataReadable) {
  SimClusterOptions opts;
  opts.replica.checkpoint_interval_slots = 16;
  opts.replica.share_cache_slots = 8;
  SnapFixture f(opts);

  // Keep writing until the gated GC has demonstrably dropped shares below
  // the snapshot watermark (adoption runs concurrently with the workload, so
  // the window where covered-but-uncompacted shares age out recurs every
  // checkpoint).
  auto total_dropped = [&] {
    uint64_t dropped = 0;
    for (int s = 0; s < 5; ++s) dropped += f.replica(s).stats().share_gc_dropped;
    return dropped;
  };
  int keys = 0;
  const int kKeys = 60;
  while (keys < 240 && (keys < kKeys || total_dropped() == 0)) {
    ASSERT_TRUE(f.put("k" + std::to_string(keys % kKeys), value_for(keys % kKeys)).is_ok())
        << keys;
    keys++;
  }
  EXPECT_GT(total_dropped(), 0u) << "GC never fired; the gate is stuck closed";

  // Failover: the new leader's rows are incomplete shares, and peers have
  // GC'd shares below the watermark. Reads must still reconstruct —
  // pre-snapshot values from the erasure-coded checkpoint, recent ones from
  // cached shares.
  int old_leader = f.leader();
  ASSERT_GE(old_leader, 0);
  f.cluster.crash_server(old_leader);
  f.run_until([&] {
    int l = f.leader();
    return l >= 0 && l != old_leader;
  });
  ASSERT_GE(f.leader(), 0);

  for (int i : {0, 1, 15, 30, kKeys - 1}) {
    auto got = f.get("k" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << "k" << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i)) << "k" << i;
  }
}

}  // namespace
}  // namespace rspaxos::kv
