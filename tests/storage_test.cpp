// WAL tests: durability-before-callback, group commit batching, crash loss
// semantics (SimWal), and real file round-trip with torn/corrupt tail
// handling (FileWal).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>

#include "obs/metrics.h"
#include "sim/sim_disk.h"
#include "sim/sim_world.h"
#include "storage/file_wal.h"
#include "storage/sim_wal.h"
#include "storage/wal.h"
#include "util/rng.h"

namespace rspaxos {
namespace {

using storage::FileWal;
using storage::MemWal;
using storage::SimWal;

TEST(MemWal, AppendAndReplayInOrder) {
  MemWal wal;
  int cbs = 0;
  wal.append(to_bytes("a"), [&](Status s) { EXPECT_TRUE(s.is_ok()); cbs++; });
  wal.append(to_bytes("b"), [&](Status s) { EXPECT_TRUE(s.is_ok()); cbs++; });
  EXPECT_EQ(cbs, 2);
  std::string out;
  wal.replay([&](BytesView r) { out += to_string(r); });
  EXPECT_EQ(out, "ab");
  EXPECT_EQ(wal.bytes_flushed(), 2u);
}

TEST(SimWal, CallbackFiresOnlyAfterDiskCompletes) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});  // 10 ms/op
  SimWal wal(&disk);
  bool durable = false;
  wal.append(to_bytes("rec"), [&](Status) { durable = true; });
  w.run_for(5 * kMillis);
  EXPECT_FALSE(durable);
  w.run_for(6 * kMillis);
  EXPECT_TRUE(durable);
}

TEST(SimWal, GroupCommitBatchesConcurrentAppends) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});
  SimWal wal(&disk);
  int done = 0;
  // First append starts a flush; the next 9 arrive while the device is busy
  // and must share the second flush: 2 flushes total, not 10.
  for (int i = 0; i < 10; ++i) {
    wal.append(Bytes(100, static_cast<uint8_t>(i)), [&](Status) { done++; });
  }
  w.run_to_completion();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(wal.flush_ops(), 2u);
  EXPECT_EQ(disk.ops(), 2u);
}

TEST(SimWal, ReplayReturnsOnlyDurableRecords) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});
  SimWal wal(&disk);
  wal.append(to_bytes("one"), nullptr);
  w.run_to_completion();  // "one" durable
  wal.append(to_bytes("two"), nullptr);
  // Crash before the second flush completes.
  wal.drop_unflushed();
  w.run_to_completion();
  std::string out;
  wal.replay([&](BytesView r) { out += to_string(r); });
  EXPECT_EQ(out, "one");
}

TEST(SimWal, LostAppendCallbackNeverFires) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});
  SimWal wal(&disk);
  wal.append(to_bytes("x"), nullptr);  // occupies the disk
  bool fired = false;
  wal.append(to_bytes("y"), [&](Status) { fired = true; });
  wal.drop_unflushed();
  w.run_to_completion();
  EXPECT_FALSE(fired);
}

class FileWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rspaxos_wal_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(FileWalTest, AppendSyncReplay) {
  auto wal = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal.is_ok());
  std::promise<void> done;
  wal.value()->append(to_bytes("hello"), nullptr);
  wal.value()->append(to_bytes("world"), [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    done.set_value();
  });
  done.get_future().wait();
  std::vector<std::string> records;
  wal.value()->replay([&](BytesView r) { records.push_back(to_string(r)); });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "hello");
  EXPECT_EQ(records[1], "world");
  EXPECT_GE(wal.value()->bytes_flushed(), 10u);
}

TEST_F(FileWalTest, SurvivesReopen) {
  {
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::promise<void> done;
    wal.value()->append(to_bytes("persist-me"), [&](Status) { done.set_value(); });
    done.get_future().wait();
  }
  auto wal2 = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal2.is_ok());
  std::vector<std::string> records;
  wal2.value()->replay([&](BytesView r) { records.push_back(to_string(r)); });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "persist-me");
}

TEST_F(FileWalTest, TornTailRecordIgnored) {
  {
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::promise<void> done;
    wal.value()->append(to_bytes("good"), [&](Status) { done.set_value(); });
    done.get_future().wait();
  }
  // Simulate a crash mid-append: garbage partial frame at the tail.
  {
    FILE* f = std::fopen(path_.string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t bogus_len = 1 << 20;
    std::fwrite(&bogus_len, 4, 1, f);
    std::fwrite("xx", 1, 2, f);
    std::fclose(f);
  }
  auto wal2 = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal2.is_ok());
  std::vector<std::string> records;
  wal2.value()->replay([&](BytesView r) { records.push_back(to_string(r)); });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "good");
}

TEST_F(FileWalTest, CorruptRecordStopsReplay) {
  {
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::promise<void> done;
    wal.value()->append(to_bytes("first"), nullptr);
    wal.value()->append(to_bytes("second"), [&](Status) { done.set_value(); });
    done.get_future().wait();
  }
  // Flip a byte inside the second record's payload.
  {
    FILE* f = std::fopen(path_.string().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // frame1 = 8 + 4 (group key) + 5; corrupt one payload byte of frame 2.
    std::fseek(f, 17 + 8 + 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 17 + 8 + 2, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto wal2 = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal2.is_ok());
  std::vector<std::string> records;
  wal2.value()->replay([&](BytesView r) { records.push_back(to_string(r)); });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first");
}

// All appends inside one group-commit window land as a single vectored flush
// op, survive replay byte-identical, and show up in rsp_wal_batch_records.
TEST_F(FileWalTest, VectoredBatchSingleFlushReplayByteIdentical) {
  auto& batch_hist = obs::MetricsRegistry::global().histogram(
      "rsp_wal_batch_records", "Records coalesced per group-commit batch");
  uint64_t hist_before = batch_hist.count();

  auto wal = FileWal::open(path_.string(), 20000);  // 20 ms window
  ASSERT_TRUE(wal.is_ok());
  constexpr int kRecords = 40;
  std::vector<Bytes> expected;
  Rng rng(11);
  for (int i = 0; i < kRecords; ++i) {
    // Varied sizes including the empty record edge case.
    size_t len = i == 0 ? 0 : rng.next_below(3000);
    Bytes rec(len);
    rng.fill(rec.data(), len);
    expected.push_back(rec);
  }
  std::atomic<int> done{0};
  std::promise<void> all;
  for (auto& rec : expected) {
    wal.value()->append(rec, [&](Status s) {
      EXPECT_TRUE(s.is_ok());
      if (++done == kRecords) all.set_value();
    });
  }
  all.get_future().wait();
  // One writev+fdatasync for the whole window (<=2 tolerates a scheduling
  // hiccup splitting the batch).
  EXPECT_LE(wal.value()->flush_ops(), 2u);

  auto snap = batch_hist.snapshot();
  EXPECT_GT(snap.count(), hist_before);
  EXPECT_GE(snap.max(), kRecords / 2);  // some batch coalesced many records

  std::vector<Bytes> replayed;
  wal.value()->replay([&](BytesView r) { replayed.emplace_back(r.begin(), r.end()); });
  ASSERT_EQ(replayed.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i], expected[i]) << "record " << i << " not byte-identical";
  }
}

// A batch larger than IOV_MAX records exercises the writev chunking loop.
TEST_F(FileWalTest, VectoredBatchBeyondIovMax) {
  auto wal = FileWal::open(path_.string(), 100000);  // 100 ms window
  ASSERT_TRUE(wal.is_ok());
  constexpr int kRecords = 1100;  // > IOV_MAX (1024) iovecs in one batch
  std::atomic<int> done{0};
  std::promise<void> all;
  for (int i = 0; i < kRecords; ++i) {
    Bytes rec(16);
    std::memcpy(rec.data(), &i, sizeof(i));
    wal.value()->append(std::move(rec), [&](Status s) {
      EXPECT_TRUE(s.is_ok());
      if (++done == kRecords) all.set_value();
    });
  }
  all.get_future().wait();
  EXPECT_LE(wal.value()->flush_ops(), 3u);
  int n = 0;
  wal.value()->replay([&](BytesView r) {
    ASSERT_EQ(r.size(), 16u);
    int got;
    std::memcpy(&got, r.data(), sizeof(got));
    EXPECT_EQ(got, n++);
  });
  EXPECT_EQ(n, kRecords);
}

// Torn-tail truncation detection survives the vectored write path: garbage
// appended after a batched flush is still cut off at replay.
TEST_F(FileWalTest, VectoredBatchTornTailStillDetected) {
  constexpr int kRecords = 10;
  {
    auto wal = FileWal::open(path_.string(), 10000);
    ASSERT_TRUE(wal.is_ok());
    std::atomic<int> done{0};
    std::promise<void> all;
    for (int i = 0; i < kRecords; ++i) {
      wal.value()->append(Bytes(100, static_cast<uint8_t>(i)), [&](Status) {
        if (++done == kRecords) all.set_value();
      });
    }
    all.get_future().wait();
    EXPECT_LE(wal.value()->flush_ops(), 2u);
  }
  {
    FILE* f = std::fopen(path_.string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t bogus_len = 7 << 20;
    std::fwrite(&bogus_len, 4, 1, f);
    std::fwrite("torn", 1, 4, f);
    std::fclose(f);
  }
  auto wal2 = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal2.is_ok());
  int n = 0;
  wal2.value()->replay([&](BytesView r) {
    EXPECT_EQ(r.size(), 100u);
    ++n;
  });
  EXPECT_EQ(n, kRecords);
}

// Replay streams in 64 KiB chunks; records larger than the chunk must still
// come back byte-identical (rolling buffer grows only for the big record).
TEST_F(FileWalTest, ReplayStreamsLargeRecords) {
  Rng rng(23);
  Bytes big(300 * 1024);
  rng.fill(big.data(), big.size());
  {
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::promise<void> done;
    wal.value()->append(to_bytes("small-before"), nullptr);
    wal.value()->append(big, nullptr);
    wal.value()->append(to_bytes("small-after"), [&](Status) { done.set_value(); });
    done.get_future().wait();
  }
  auto wal2 = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal2.is_ok());
  std::vector<Bytes> records;
  wal2.value()->replay([&](BytesView r) { records.emplace_back(r.begin(), r.end()); });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(to_string(records[0]), "small-before");
  EXPECT_EQ(records[1], big);
  EXPECT_EQ(to_string(records[2]), "small-after");
}

TEST_F(FileWalTest, GroupCommitWindowBatchesAppends) {
  auto wal = FileWal::open(path_.string(), 2000);  // 2 ms window
  ASSERT_TRUE(wal.is_ok());
  std::atomic<int> done{0};
  std::promise<void> all;
  for (int i = 0; i < 20; ++i) {
    wal.value()->append(Bytes(10, static_cast<uint8_t>(i)), [&](Status) {
      if (++done == 20) all.set_value();
    });
  }
  all.get_future().wait();
  // All 20 appends landed within one or two windows.
  EXPECT_LE(wal.value()->flush_ops(), 3u);
}

// Property sweep: truncate the log inside (or at the start of) the final
// record at EVERY byte offset. Whatever the cut, open() must repair the tail
// down to the longest valid frame prefix, replay exactly the intact records,
// and keep accepting appends afterwards.
TEST_F(FileWalTest, TornTailRepairAtEveryByteOffset) {
  const std::vector<std::string> recs = {"alpha", "bravo!", "charlie-7", "delta-delta"};
  {
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::promise<void> done;
    for (size_t i = 0; i < recs.size(); ++i) {
      wal.value()->append(to_bytes(recs[i]),
                          i + 1 == recs.size() ? [&](Status) { done.set_value(); }
                                               : storage::Wal::DurableFn{});
    }
    done.get_future().wait();
  }
  // Byte image of the intact log; each frame is 8 bytes of header + 4 bytes
  // of group key + payload.
  std::vector<uint8_t> image;
  {
    std::ifstream in(path_.string(), std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  size_t prefix = 0;
  for (size_t i = 0; i + 1 < recs.size(); ++i) prefix += 12 + recs[i].size();
  ASSERT_EQ(image.size(), prefix + 12 + recs.back().size());

  for (size_t cut = prefix; cut < image.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    {
      std::ofstream out(path_.string(), std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(cut));
    }
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::vector<std::string> got;
    wal.value()->replay([&](BytesView r) { got.push_back(to_string(r)); });
    ASSERT_EQ(got.size(), recs.size() - 1);
    for (size_t i = 0; i + 1 < recs.size(); ++i) EXPECT_EQ(got[i], recs[i]);
    // The repaired log must keep accepting appends.
    std::promise<void> done;
    wal.value()->append(to_bytes("recovered"), [&](Status s) {
      EXPECT_TRUE(s.is_ok());
      done.set_value();
    });
    done.get_future().wait();
    got.clear();
    wal.value()->replay([&](BytesView r) { got.push_back(to_string(r)); });
    ASSERT_EQ(got.size(), recs.size());
    EXPECT_EQ(got.back(), "recovered");
  }
}

// truncate_prefix: the replacement head lands in a fresh segment, the
// manifest commits, old segments are unlinked, and the compacted log
// round-trips a process restart.
TEST_F(FileWalTest, TruncatePrefixRotatesUnlinksAndSurvivesReopen) {
  {
    auto wal = FileWal::open(path_.string(), 0);
    ASSERT_TRUE(wal.is_ok());
    std::promise<void> flushed;
    for (int i = 0; i < 8; ++i) wal.value()->append(Bytes(1024, uint8_t(i)), nullptr);
    wal.value()->append(to_bytes("tail"), [&](Status) { flushed.set_value(); });
    flushed.get_future().wait();
    uint64_t seg_before = wal.value()->active_segment();

    std::vector<Bytes> head;
    head.push_back(to_bytes("head-1"));
    head.push_back(to_bytes("head-2"));
    std::promise<uint64_t> reclaimed;
    wal.value()->truncate_prefix(std::move(head), [&](StatusOr<uint64_t> r) {
      ASSERT_TRUE(r.is_ok());
      reclaimed.set_value(r.value());
    });
    EXPECT_GT(reclaimed.get_future().get(), 8u * 1024u);
    EXPECT_GT(wal.value()->first_segment(), seg_before);
    EXPECT_GE(wal.value()->truncated_bytes(), 8u * 1024u);
    // Old segments are gone from disk.
    for (uint64_t s = 0; s <= seg_before; ++s) {
      EXPECT_FALSE(std::filesystem::exists(wal.value()->segment_path(s)))
          << "segment " << s << " should be unlinked";
    }
    std::promise<void> appended;
    wal.value()->append(to_bytes("after-truncate"), [&](Status) { appended.set_value(); });
    appended.get_future().wait();
  }
  auto wal2 = FileWal::open(path_.string(), 0);
  ASSERT_TRUE(wal2.is_ok());
  std::vector<std::string> got;
  wal2.value()->replay([&](BytesView r) { got.push_back(to_string(r)); });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "head-1");
  EXPECT_EQ(got[1], "head-2");
  EXPECT_EQ(got[2], "after-truncate");
}

// Appends rotate into new segments once the active one passes segment_bytes;
// replay stitches all live segments back together in order.
TEST_F(FileWalTest, SegmentRotationReplaysAcrossSegments) {
  {
    auto wal = FileWal::open(path_.string(), 0, /*segment_bytes=*/4096);
    ASSERT_TRUE(wal.is_ok());
    // One durable batch per record, so rotation (a batch-boundary decision)
    // actually triggers once the active segment passes 4 KiB.
    for (int i = 0; i < 16; ++i) {
      std::promise<void> done;
      wal.value()->append(Bytes(1024, static_cast<uint8_t>('a' + i)),
                          [&](Status) { done.set_value(); });
      done.get_future().wait();
    }
    EXPECT_GT(wal.value()->active_segment(), 0u);
  }
  auto wal2 = FileWal::open(path_.string(), 0, 4096);
  ASSERT_TRUE(wal2.is_ok());
  int i = 0;
  wal2.value()->replay([&](BytesView r) {
    ASSERT_EQ(r.size(), 1024u);
    EXPECT_EQ(r[0], static_cast<uint8_t>('a' + i));
    ++i;
  });
  EXPECT_EQ(i, 16);
}

TEST(SimWalTruncate, BarrierReplacesPrefixAndCountsBytes) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});
  SimWal wal(&disk);
  wal.append(Bytes(500, 1), nullptr);
  wal.append(Bytes(500, 2), nullptr);
  w.run_to_completion();
  std::vector<Bytes> head;
  head.push_back(to_bytes("head"));
  uint64_t reclaimed = 0;
  wal.truncate_prefix(std::move(head),
                      [&](StatusOr<uint64_t> r) { reclaimed = r.is_ok() ? r.value() : 0; });
  wal.append(to_bytes("after"), nullptr);
  w.run_to_completion();
  EXPECT_EQ(reclaimed, 1000u);
  EXPECT_EQ(wal.truncated_bytes(), 1000u);
  std::vector<std::string> got;
  wal.replay([&](BytesView r) { got.push_back(to_string(r)); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "head");
  EXPECT_EQ(got[1], "after");
}

}  // namespace
}  // namespace rspaxos
