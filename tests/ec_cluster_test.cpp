// Cluster-level coverage for the pluggable erasure-code policy layer: a
// simulated 5-server cluster runs Hitchhiker (hh) shares end to end — normal
// writes, catch-up of a lagging replica served through plan-driven share
// repair, and degraded reads after the only full-copy holder (the proposing
// leader) dies. hh is MDS, so the rs quorums (QR = QW = N - f, X = N - 2f)
// carry over unchanged; what changes is every byte on the wire.
#include <gtest/gtest.h>

#include <string>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

struct EcFixture {
  sim::SimWorld world;
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit EcFixture(SimClusterOptions opts = {}, uint64_t seed = 42)
      : world(seed), cluster(&world, tuned(opts)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 500 * kMillis;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions tuned(SimClusterOptions opts) {
    opts.code = ec::CodeId::kHh;
    opts.replica.heartbeat_interval = 20 * kMillis;
    opts.replica.election_timeout_min = 150 * kMillis;
    opts.replica.election_timeout_max = 300 * kMillis;
    opts.replica.lease_duration = 100 * kMillis;
    opts.replica.max_clock_drift = 10 * kMillis;
    return opts;
  }

  Status put(const std::string& key, Bytes value) {
    std::optional<Status> out;
    client->put(key, std::move(value), [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  StatusOr<Bytes> get(const std::string& key) {
    std::optional<StatusOr<Bytes>> out;
    client->get(key, [&](StatusOr<Bytes> r) { out = std::move(r); });
    run_until([&] { return out.has_value(); });
    if (!out.has_value()) return Status::timeout("sim ended");
    return std::move(*out);
  }

  template <typename Pred>
  void run_until(Pred done, DurationMicros max = 30 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(5 * kMillis);
  }

  int leader() const { return cluster.leader_server_of(0); }
  consensus::Replica& replica(int s) { return cluster.server(s, 0)->replica(); }
};

Bytes value_for(int i) {
  return Bytes(256, static_cast<uint8_t>('a' + (i % 26)));
}

TEST(EcClusterSim, HitchhikerSharesCommitAndRead) {
  EcFixture f;
  ASSERT_EQ(f.cluster.server(f.leader(), 0)->replica().config().code, ec::CodeId::kHh);

  const int kKeys = 30;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(f.put("k" + std::to_string(i), value_for(i)).is_ok()) << i;
  }
  for (int i = 0; i < kKeys; ++i) {
    auto got = f.get("k" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << "k" << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i));
  }
  // Acceptors persisted hh shares, not full copies: every follower's WAL is
  // a fraction of the leader's total value bytes (x = 3 here).
  int l = f.leader();
  for (int s = 0; s < 5; ++s) {
    if (s == l) continue;
    EXPECT_LT(f.cluster.host_wal(s).bytes_flushed(),
              static_cast<uint64_t>(kKeys) * 256)
        << "server " << s << " stored full copies, not shares";
  }
}

// The hard path: a follower misses writes whose proposer then dies. The new
// leader holds only its own hh share of those slots, so serving catch-up to
// the restarted follower forces the plan-driven share repair (fetch the
// cheapest share set from peers, rebuild the requester's share), and client
// reads of those keys decode from a gathered share set (degraded reads).
TEST(EcClusterSim, RepairServesCatchupAndDegradedReadsAfterLeaderLoss) {
  EcFixture f;
  const int kPhase1 = 10, kPhase2 = 24;
  for (int i = 0; i < kPhase1; ++i) {
    ASSERT_TRUE(f.put("k" + std::to_string(i), value_for(i)).is_ok()) << i;
  }

  int old_leader = f.leader();
  ASSERT_GE(old_leader, 0);
  int lagger = (old_leader + 4) % 5;  // any non-leader
  f.cluster.crash_server(lagger);

  // QW = 4 of 5: writes still commit with exactly the other four alive.
  for (int i = kPhase1; i < kPhase2; ++i) {
    ASSERT_TRUE(f.put("k" + std::to_string(i), value_for(i)).is_ok()) << i;
  }

  // Kill the proposer: phase-2 values now exist ONLY as hh shares.
  f.cluster.crash_server(old_leader);
  f.cluster.restart_server(lagger);
  f.run_until([&] {
    int l = f.leader();
    return l >= 0 && l != old_leader;
  });
  int new_leader = f.leader();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, old_leader);

  // Every key must still read correctly — phase-2 ones decode degraded.
  for (int i = 0; i < kPhase2; ++i) {
    auto got = f.get("k" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << "k" << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i)) << "k" << i;
  }
  EXPECT_GT(f.cluster.server(new_leader, 0)->stats().ec_degraded_reads, 0u)
      << "phase-2 reads must have decoded from gathered shares";

  // The lagger converges to the cluster's applied frontier; closing its gap
  // required share fetches somewhere (catch-up repair or whole-value
  // recovery), which the repair-bytes stat accounts.
  consensus::Slot target = f.replica(new_leader).last_applied();
  f.run_until([&] { return f.replica(lagger).last_applied() >= target; });
  EXPECT_GE(f.replica(lagger).last_applied(), target);
  uint64_t fetched = 0;
  for (int s = 0; s < 5; ++s) {
    if (s == old_leader) continue;
    fetched += f.replica(s).stats().repair_bytes;
  }
  EXPECT_GT(fetched, 0u) << "no share bytes were ever fetched for repair";
}

}  // namespace
}  // namespace rspaxos::kv
