// Elastic resharding over the real stack: an online shard migration between
// two Paxos groups on a TcpCluster (real sockets, fsync'ing WALs) while a
// client keeps writing into the moving shard. Pins the cross-thread half of
// the design: the RoutingView published from the meta group's apply path on
// one loop is read by every other reactor and by the client-facing check
// order, and the chunk protocol runs leader-loop to leader-loop.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <string>
#include <thread>

#include "kv/client.h"
#include "node/tcp_cluster.h"

namespace rspaxos {
namespace {

constexpr int kServers = 5;
constexpr uint32_t kGroups = 2;
constexpr uint32_t kShards = 4;

template <typename Pred>
bool poll_until(Pred done, int timeout_ms = 60000) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return done();
}

std::string key_in_shard(uint32_t shard, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "rs/" + std::to_string(n);
    if (kv::shard_of(key, kShards) == shard && found++ == i) return key;
  }
}

Bytes value_of(int version) {
  Bytes v(512, static_cast<uint8_t>('a' + version % 26));
  std::string tag = std::to_string(version);
  for (size_t i = 0; i < tag.size(); ++i) v[i] = static_cast<uint8_t>(tag[i]);
  return v;
}

TEST(ReshardTcp, MigrationUnderLoadOverRealSockets) {
  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_reshard_tcp_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  node::TcpClusterOptions opts;
  opts.num_servers = kServers;
  opts.num_groups = kGroups;
  opts.num_shards = kShards;
  opts.f = 1;
  opts.data_dir = dir.string();
  opts.replica.heartbeat_interval = 30 * kMillis;
  opts.replica.election_timeout_min = 300 * kMillis;
  opts.replica.election_timeout_max = 600 * kMillis;
  opts.replica.lease_duration = 250 * kMillis;

  auto started = node::TcpCluster::start(opts);
  ASSERT_TRUE(started.is_ok()) << started.status().to_string();
  auto cluster = std::move(started).value();
  ASSERT_TRUE(poll_until([&] {
    for (uint32_t g = 0; g < kGroups; ++g) {
      if (cluster->leader_server_of(g) < 0) return false;
    }
    return true;
  })) << "leader election";

  auto cnode = cluster->start_client();
  ASSERT_TRUE(cnode.is_ok()) << cnode.status().to_string();
  kv::KvClient::Options copts;
  copts.request_timeout = 2000 * kMillis;
  copts.max_attempts = 200;
  kv::KvClient client(cnode.value(), cluster->routing(), copts);
  cnode.value()->loop().post([&] { cnode.value()->set_handler(&client); });

  auto put = [&](const std::string& key, Bytes value) {
    std::promise<Status> done;
    auto fut = done.get_future();
    cnode.value()->loop().post([&, key] {
      client.put(key, std::move(value), [&](Status s) { done.set_value(s); });
    });
    if (fut.wait_for(std::chrono::seconds(20)) != std::future_status::ready) {
      return Status::timeout("put " + key);
    }
    return fut.get();
  };
  auto get = [&](const std::string& key) -> StatusOr<Bytes> {
    std::promise<StatusOr<Bytes>> done;
    auto fut = done.get_future();
    cnode.value()->loop().post([&, key] {
      client.get(key, [&](StatusOr<Bytes> r) { done.set_value(std::move(r)); });
    });
    if (fut.wait_for(std::chrono::seconds(20)) != std::future_status::ready) {
      return Status::timeout("get " + key);
    }
    return fut.get();
  };

  // Shard 2 starts in group 0 under the identity map; move it to group 1.
  const uint32_t kShard = 2, kFrom = 0, kTo = 1;
  const int kKeys = 32;
  std::map<std::string, int> acked;
  int version = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string k = key_in_shard(kShard, i);
    ++version;
    ASSERT_TRUE(put(k, value_of(version)).is_ok()) << k;
    acked[k] = version;
  }

  int src = cluster->leader_server_of(kFrom);
  ASSERT_GE(src, 0);
  kv::KvServer* srv = cluster->server(src, kFrom);
  cluster->endpoint(src, kFrom)->loop().post(
      [srv] { srv->start_migration(kShard, kTo); });

  // Write through the move; the flip is visible once any host's RoutingView
  // reports the shard owned by the destination with no migration in flight.
  auto moved = [&] {
    auto m = cluster->host(0).routing()->snapshot();
    return m->group_of(kShard) == kTo && m->migrations.empty();
  };
  size_t during = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (size_t i = 0; !moved() && std::chrono::steady_clock::now() < deadline; ++i) {
    std::string k = key_in_shard(kShard, static_cast<int>(i) % kKeys);
    ++version;
    if (put(k, value_of(version)).is_ok()) {
      acked[k] = version;
      ++during;
    }
  }
  ASSERT_TRUE(moved()) << "migration did not complete";
  EXPECT_GT(during, 0u);

  // Every machine converges onto the flipped map (follower RoutingViews are
  // fed by recover_payload of their coded "!routing" share).
  EXPECT_TRUE(poll_until([&] {
    for (int s = 0; s < kServers; ++s) {
      if (cluster->host(s).routing()->snapshot()->group_of(kShard) != kTo) return false;
    }
    return true;
  }));

  // Zero acked-write loss across the move, served by the new owner.
  for (const auto& [k, ver] : acked) {
    auto got = get(k);
    ASSERT_TRUE(got.is_ok()) << k;
    EXPECT_EQ(got.value(), value_of(ver)) << k;
  }

  // New writes land in the destination group directly.
  ++version;
  std::string fresh = key_in_shard(kShard, 0);
  ASSERT_TRUE(put(fresh, value_of(version)).is_ok());
  auto got = get(fresh);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), value_of(version));

  cnode.value()->loop().post([&] { client.cancel_all(Status::aborted("test over")); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cluster.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rspaxos
