// Reconfiguration tests (§4.6): the re-encode planner's rules (including the
// paper's two worked examples), view-change validation, and end-to-end epoch
// switches through the replicated log.
#include <gtest/gtest.h>

#include "consensus/view.h"
#include "kv/cluster.h"

namespace rspaxos::consensus {
namespace {

GroupConfig make(std::vector<NodeId> members, int qr, int qw, int x, Epoch epoch) {
  GroupConfig c;
  c.members = std::move(members);
  c.qr = qr;
  c.qw = qw;
  c.x = x;
  c.epoch = epoch;
  return c;
}

TEST(ViewPlan, SameXSameMembersNeedsNothing) {
  // Paper example 1: (N=5, Q=4, θ(3,5)) -> θ'(3,3)-shaped change keeping X:
  // "there is no need to re-spread the data".
  GroupConfig oldc = make({1, 2, 3, 4, 5}, 4, 4, 3, 0);
  GroupConfig newc = make({1, 2, 3, 4, 5}, 4, 4, 3, 1);
  EXPECT_EQ(plan_reencode(oldc, newc), ReencodeAction::kNone);
}

TEST(ViewPlan, SameXNewMembersOnlySeedsNewReplicas) {
  GroupConfig oldc = make({1, 2, 3, 4, 5}, 4, 4, 3, 0);
  GroupConfig newc = make({1, 2, 3, 4, 5, 6}, 5, 4, 3, 1);
  EXPECT_EQ(plan_reencode(oldc, newc), ReencodeAction::kConfirmShares);
}

TEST(ViewPlan, QuorumAtLeastOldXConfirmsOnly) {
  // Paper example 2: old (N=5, Q=4, X=3), new (N'=4, Q'=3, X'=2):
  // "the system only needs to confirm every server holds its data shares".
  GroupConfig oldc = make({1, 2, 3, 4, 5}, 4, 4, 3, 0);
  GroupConfig newc = make({1, 2, 3, 4}, 3, 3, 2, 1);
  EXPECT_EQ(plan_reencode(oldc, newc), ReencodeAction::kConfirmShares);
}

TEST(ViewPlan, SmallQuorumForcesRecode) {
  // New quorum below old X: a quorum might not reach X old shares — recode.
  GroupConfig oldc = make({1, 2, 3, 4, 5, 6, 7}, 6, 6, 5, 0);
  GroupConfig newc = make({1, 2, 3}, 2, 2, 1, 1);
  EXPECT_EQ(plan_reencode(oldc, newc), ReencodeAction::kRecode);
}

TEST(ViewPlan, XChangeWithLargeQuorumStillConfirmOnly) {
  GroupConfig oldc = make({1, 2, 3, 4, 5}, 4, 4, 3, 0);
  GroupConfig newc = make({1, 2, 3, 4, 5}, 5, 3, 3, 1);
  // X unchanged -> none (same members).
  EXPECT_EQ(plan_reencode(oldc, newc), ReencodeAction::kNone);
  GroupConfig newc2 = make({1, 2, 3, 4, 5}, 4, 5, 4, 1);
  // X raised 3->4 but min quorum 4 >= old X 3 -> confirm only.
  EXPECT_EQ(plan_reencode(oldc, newc2), ReencodeAction::kConfirmShares);
}

TEST(ViewChange, ValidationRules) {
  GroupConfig oldc = make({1, 2, 3, 4, 5}, 4, 4, 3, 4);
  GroupConfig good = make({1, 2, 3, 4, 5}, 3, 3, 1, 5);
  EXPECT_TRUE(validate_view_change(oldc, good).is_ok());

  GroupConfig bad_epoch = make({1, 2, 3, 4, 5}, 3, 3, 1, 7);
  EXPECT_FALSE(validate_view_change(oldc, bad_epoch).is_ok());

  GroupConfig invalid = make({1, 2, 3, 4, 5}, 3, 3, 3, 5);  // equation broken
  EXPECT_FALSE(validate_view_change(oldc, invalid).is_ok());
}

TEST(ViewPlan, ToStringCoversAllActions) {
  EXPECT_STREQ(to_string(ReencodeAction::kNone), "none");
  EXPECT_STREQ(to_string(ReencodeAction::kConfirmShares), "confirm-shares");
  EXPECT_STREQ(to_string(ReencodeAction::kRecode), "recode");
}

}  // namespace
}  // namespace rspaxos::consensus

namespace rspaxos::kv {
namespace {

using consensus::GroupConfig;

struct Fixture {
  sim::SimWorld world{7};
  SimCluster cluster;

  Fixture() : cluster(&world, options()) { cluster.wait_for_leaders(); }

  static SimClusterOptions options() {
    SimClusterOptions o;
    o.replica.heartbeat_interval = 20 * kMillis;
    o.replica.election_timeout_min = 150 * kMillis;
    o.replica.election_timeout_max = 300 * kMillis;
    o.replica.lease_duration = 100 * kMillis;
    return o;
  }
};

TEST(ViewChangeE2E, EpochSwitchesOnAllReplicas) {
  Fixture f;
  int leader = f.cluster.leader_server_of(0);
  ASSERT_GE(leader, 0);
  auto& rep = f.cluster.server(leader, 0)->replica();

  GroupConfig newc = rep.config();
  newc.epoch = 1;
  // Flip from X=3 to full-copy X=1 with majority quorums (still N=5).
  newc.x = 1;
  newc.qr = 3;
  newc.qw = 3;
  bool committed = false;
  rep.propose_config(newc, [&](StatusOr<consensus::Slot> r) {
    ASSERT_TRUE(r.is_ok());
    committed = true;
  });
  f.world.run_for(2 * kSeconds);
  ASSERT_TRUE(committed);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(f.cluster.server(s, 0)->replica().config().epoch, 1u) << "server " << s;
    EXPECT_EQ(f.cluster.server(s, 0)->replica().config().x, 1);
  }
}

TEST(ViewChangeE2E, WritesUseNewCodingAfterSwitch) {
  Fixture f;
  auto client = f.cluster.make_client(0);
  // Write before the change: X=3 shares on followers.
  bool done = false;
  client->put("pre", Bytes(3000, 1), [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = true;
  });
  while (!done) f.world.run_for(5 * kMillis);

  int leader = f.cluster.leader_server_of(0);
  auto& rep = f.cluster.server(leader, 0)->replica();
  GroupConfig newc = rep.config();
  newc.epoch = 1;
  newc.x = 1;
  newc.qr = 3;
  newc.qw = 3;
  rep.propose_config(newc, nullptr);
  f.world.run_for(2 * kSeconds);

  done = false;
  client->put("post", Bytes(3000, 2), [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = true;
  });
  TimeMicros deadline = f.world.now() + 10 * kSeconds;
  while (!done && f.world.now() < deadline) f.world.run_for(5 * kMillis);
  ASSERT_TRUE(done);
  f.world.run_for(1 * kSeconds);

  leader = f.cluster.leader_server_of(0);
  for (int s = 0; s < 5; ++s) {
    if (s == leader) continue;
    const auto* rec = f.cluster.server(s, 0)->store().find("post");
    ASSERT_NE(rec, nullptr);
    // X=1: followers now hold full copies.
    EXPECT_EQ(rec->data.size(), 3000u) << "server " << s;
  }
}

TEST(ViewChangeE2E, RejectsSkippedEpoch) {
  Fixture f;
  int leader = f.cluster.leader_server_of(0);
  auto& rep = f.cluster.server(leader, 0)->replica();
  GroupConfig newc = rep.config();
  newc.epoch = 5;  // must be current + 1
  bool called = false;
  rep.propose_config(newc, [&](StatusOr<consensus::Slot> r) {
    called = true;
    EXPECT_FALSE(r.is_ok());
  });
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace rspaxos::kv
