// Multi-Paxos Replica tests: election, replication, commit/apply ordering,
// leader failover with value recovery, catch-up of restarted nodes, leases,
// and cost accounting (coded shares vs full copies).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "consensus/replica.h"
#include "sim/sim_network.h"
#include "sim/sim_world.h"
#include "storage/wal.h"

namespace rspaxos::consensus {
namespace {

struct Applied {
  Slot slot;
  ValueId vid;
  std::string header;
  bool had_full;
  size_t data_size;
};

// One Replica bound to a sim node with a MemWal and an apply recorder.
struct ReplicaHost final : MessageHandler {
  sim::SimNetwork* net;
  sim::SimNode* node;
  storage::MemWal wal;
  std::unique_ptr<Replica> replica;
  std::vector<Applied> applied;
  GroupConfig cfg;
  ReplicaOptions opts;

  ReplicaHost(sim::SimNetwork* n, NodeId id, GroupConfig c, ReplicaOptions o)
      : net(n), node(n->node(id)), cfg(std::move(c)), opts(o) {
    make();
  }

  void make() {
    replica = std::make_unique<Replica>(node, &wal, cfg, opts);
    replica->set_apply([this](const ApplyView& v) {
      applied.push_back(Applied{v.slot, v.vid, rspaxos::to_string(*v.header),
                                v.full_payload != nullptr,
                                v.full_payload ? v.full_payload->size()
                                               : v.share->data.size()});
    });
    node->set_handler(this);
    replica->start();
  }

  void on_message(NodeId from, MsgType type, BytesView payload) override {
    replica->on_message(from, type, payload);
  }

  void crash() {
    net->crash(node->id());
    node->set_handler(nullptr);
    replica.reset();
    applied.clear();  // volatile
  }

  void restart() {
    net->restart(node->id());
    opts.bootstrap_leader = false;
    make();
  }
};

struct Cluster {
  sim::SimWorld world;
  sim::SimNetwork net;
  std::vector<std::unique_ptr<ReplicaHost>> hosts;

  explicit Cluster(int n, int f = 1, uint64_t seed = 77, bool rs = true)
      : world(seed), net(&world) {
    std::vector<NodeId> members;
    for (int i = 1; i <= n; ++i) members.push_back(static_cast<NodeId>(i));
    GroupConfig cfg =
        rs ? GroupConfig::rs_max_x(members, f).value() : GroupConfig::majority(members);
    ReplicaOptions opts;
    opts.heartbeat_interval = 20 * kMillis;
    opts.election_timeout_min = 150 * kMillis;
    opts.election_timeout_max = 300 * kMillis;
    opts.lease_duration = 100 * kMillis;
    opts.max_clock_drift = 10 * kMillis;
    for (int i = 1; i <= n; ++i) {
      ReplicaOptions o = opts;
      o.bootstrap_leader = (i == 1);
      hosts.push_back(std::make_unique<ReplicaHost>(&net, static_cast<NodeId>(i), cfg, o));
    }
  }

  ReplicaHost* leader() {
    for (auto& h : hosts) {
      if (h->replica && h->replica->is_leader()) return h.get();
    }
    return nullptr;
  }

  ReplicaHost* wait_leader(DurationMicros max = 10 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (world.now() < deadline) {
      if (ReplicaHost* l = leader()) return l;
      world.run_for(10 * kMillis);
    }
    return nullptr;
  }
};

TEST(Replica, BootstrapElectsInitialLeader) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->node->id(), 1u);
  EXPECT_EQ(l->replica->leader_hint(), 1u);
  // Followers learn the hint via heartbeats.
  c.world.run_for(200 * kMillis);
  for (auto& h : c.hosts) EXPECT_EQ(h->replica->leader_hint(), 1u);
}

TEST(Replica, ProposeCommitsAndAppliesEverywhere) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  std::optional<Slot> slot;
  l->replica->propose(to_bytes("cmd-a"), Bytes(900, 0xee), [&](StatusOr<Slot> r) {
    ASSERT_TRUE(r.is_ok());
    slot = r.value();
  });
  c.world.run_for(500 * kMillis);
  ASSERT_TRUE(slot.has_value());
  for (auto& h : c.hosts) {
    ASSERT_EQ(h->applied.size(), 1u) << "node " << h->node->id();
    EXPECT_EQ(h->applied[0].header, "cmd-a");
    EXPECT_EQ(h->applied[0].slot, *slot);
  }
  // Leader applies the full value; followers apply 1/X-size shares (X=3).
  EXPECT_TRUE(l->applied[0].had_full);
  EXPECT_EQ(l->applied[0].data_size, 900u);
  for (auto& h : c.hosts) {
    if (h.get() == l) continue;
    EXPECT_FALSE(h->applied[0].had_full);
    EXPECT_EQ(h->applied[0].data_size, 300u);
  }
}

TEST(Replica, CommitsStayOrderedUnderPipelining) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    l->replica->propose(Bytes{static_cast<uint8_t>(i)}, Bytes(64, static_cast<uint8_t>(i)),
                        [&](StatusOr<Slot> r) {
                          ASSERT_TRUE(r.is_ok());
                          committed++;
                        });
  }
  c.world.run_for(2 * kSeconds);
  EXPECT_EQ(committed, 50);
  for (auto& h : c.hosts) {
    ASSERT_EQ(h->applied.size(), 50u);
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(h->applied[i].header, std::string(1, static_cast<char>(i)));
      if (i > 0) {
        EXPECT_GT(h->applied[i].slot, h->applied[i - 1].slot);
      }
    }
  }
}

TEST(Replica, NonLeaderRejectsPropose) {
  Cluster c(5);
  ASSERT_NE(c.wait_leader(), nullptr);
  ReplicaHost* follower = nullptr;
  for (auto& h : c.hosts) {
    if (!h->replica->is_leader()) follower = h.get();
  }
  ASSERT_NE(follower, nullptr);
  bool failed = false;
  follower->replica->propose(Bytes{}, Bytes{}, [&](StatusOr<Slot> r) {
    EXPECT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), Code::kUnavailable);
    failed = true;
  });
  EXPECT_TRUE(failed);
}

TEST(Replica, LeaderCrashTriggersFailoverAndValueSurvives) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  bool committed = false;
  l->replica->propose(to_bytes("survivor"), Bytes(600, 0x66),
                      [&](StatusOr<Slot> r) { committed = r.is_ok(); });
  c.world.run_for(500 * kMillis);
  ASSERT_TRUE(committed);

  l->crash();
  c.world.run_for(2 * kSeconds);
  ReplicaHost* l2 = c.leader();
  ASSERT_NE(l2, nullptr);
  EXPECT_NE(l2->node->id(), l->node->id());

  // New leader can still commit, and the log keeps the old entry: a fresh
  // proposal lands in a later slot.
  std::optional<Slot> s2;
  l2->replica->propose(to_bytes("next"), Bytes(10, 1), [&](StatusOr<Slot> r) {
    ASSERT_TRUE(r.is_ok());
    s2 = r.value();
  });
  c.world.run_for(1 * kSeconds);
  ASSERT_TRUE(s2.has_value());
  // All live replicas applied both commands in order.
  for (auto& h : c.hosts) {
    if (!h->replica) continue;
    bool saw_survivor = false, saw_next = false;
    for (const auto& a : h->applied) {
      if (a.header == "survivor") saw_survivor = true;
      if (a.header == "next") {
        saw_next = true;
        EXPECT_TRUE(saw_survivor) << "order violated on node " << h->node->id();
      }
    }
    EXPECT_TRUE(saw_next) << "node " << h->node->id();
  }
}

TEST(Replica, NewLeaderRecoversUncommittedValueFromShares) {
  // Kill the leader right after it gathers a write quorum; the next leader's
  // phase 1 must find >= X shares and re-propose the same value id.
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  std::optional<Slot> slot;
  l->replica->propose(to_bytes("maybe-chosen"), Bytes(300, 0x77),
                      [&](StatusOr<Slot> r) { if (r.is_ok()) slot = r.value(); });
  // Let accepts reach followers and be persisted, then crash the leader
  // before it can spread commit knowledge far.
  c.world.run_for(150 * kMillis);
  l->crash();
  c.world.run_for(3 * kSeconds);
  ReplicaHost* l2 = c.leader();
  ASSERT_NE(l2, nullptr);
  c.world.run_for(2 * kSeconds);
  // The value must be applied on every live node exactly once (stability).
  for (auto& h : c.hosts) {
    if (!h->replica) continue;
    int count = 0;
    for (const auto& a : h->applied) {
      if (a.header == "maybe-chosen") count++;
    }
    EXPECT_EQ(count, 1) << "node " << h->node->id();
  }
}

TEST(Replica, RestartedFollowerCatchesUp) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  ReplicaHost* victim = c.hosts[4].get();
  victim->crash();

  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    l->replica->propose(Bytes{static_cast<uint8_t>('A' + i)}, Bytes(120, 5),
                        [&](StatusOr<Slot> r) { if (r.is_ok()) committed++; });
  }
  c.world.run_for(1 * kSeconds);
  EXPECT_EQ(committed, 10) << "QW=4 of 5 still reachable";

  victim->restart();
  c.world.run_for(5 * kSeconds);
  // The restarted node learned and applied all ten entries via catch-up
  // (leader re-encoded its fragments, §4.5).
  EXPECT_EQ(victim->applied.size(), 10u);
  EXPECT_GE(l->replica->stats().catchup_entries_served, 1u);
}

TEST(Replica, LeaseBecomesValidAndGatesOnQuorum) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  c.world.run_for(300 * kMillis);  // a few heartbeat rounds
  EXPECT_TRUE(l->replica->lease_valid());

  // Cut the leader off: the lease must lapse within lease_duration.
  c.net.partition({l->node->id()}, {1, 2, 3, 4, 5});
  c.world.run_for(300 * kMillis);
  EXPECT_FALSE(l->replica->lease_valid());
}

TEST(Replica, RecoverPayloadDecodesFromFollowers) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  Bytes value(999, 0x3c);
  std::optional<Slot> slot;
  l->replica->propose(to_bytes("k"), value, [&](StatusOr<Slot> r) {
    if (r.is_ok()) slot = r.value();
  });
  c.world.run_for(500 * kMillis);
  ASSERT_TRUE(slot.has_value());

  // Ask a *follower* (which only holds a share) to recover the payload.
  ReplicaHost* follower = nullptr;
  for (auto& h : c.hosts) {
    if (!h->replica->is_leader()) follower = h.get();
  }
  ASSERT_NE(follower, nullptr);
  std::optional<Bytes> got;
  follower->replica->recover_payload(*slot, [&](StatusOr<Bytes> r) {
    ASSERT_TRUE(r.is_ok());
    got = std::move(r).value();
  });
  c.world.run_for(1 * kSeconds);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, value);
}

TEST(Replica, CodedModeSendsLessDataThanFullCopy) {
  auto run = [](bool rs) {
    Cluster c(5, 1, 99, rs);
    ReplicaHost* l = c.wait_leader();
    EXPECT_NE(l, nullptr);
    uint64_t before = l->node->bytes_sent();
    int committed = 0;
    for (int i = 0; i < 20; ++i) {
      l->replica->propose(Bytes{1}, Bytes(90'000, 1),
                          [&](StatusOr<Slot> r) { if (r.is_ok()) committed++; });
    }
    c.world.run_for(5 * kSeconds);
    EXPECT_EQ(committed, 20);
    return l->node->bytes_sent() - before;
  };
  uint64_t coded = run(true);
  uint64_t full = run(false);
  // Full copy sends ~4 x 90 KB per value; coded sends ~4 x 30 KB. Allow
  // generous slack for control traffic.
  EXPECT_LT(static_cast<double>(coded), 0.45 * static_cast<double>(full))
      << "coded=" << coded << " full=" << full;
}

TEST(Replica, WalFlushesShrinkWithCoding) {
  auto run = [](bool rs) {
    Cluster c(5, 1, 7, rs);
    ReplicaHost* l = c.wait_leader();
    EXPECT_NE(l, nullptr);
    int committed = 0;
    for (int i = 0; i < 10; ++i) {
      l->replica->propose(Bytes{1}, Bytes(60'000, 2),
                          [&](StatusOr<Slot> r) { if (r.is_ok()) committed++; });
    }
    c.world.run_for(5 * kSeconds);
    EXPECT_EQ(committed, 10);
    uint64_t flushed = 0;
    for (auto& h : c.hosts) flushed += h->wal.bytes_flushed();
    return flushed;
  };
  uint64_t coded = run(true);
  uint64_t full = run(false);
  EXPECT_LT(static_cast<double>(coded), 0.5 * static_cast<double>(full))
      << "coded=" << coded << " full=" << full;
}

TEST(Replica, SurvivesFullClusterRestart) {
  Cluster c(5);
  ReplicaHost* l = c.wait_leader();
  ASSERT_NE(l, nullptr);
  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    l->replica->propose(Bytes{static_cast<uint8_t>(i)}, Bytes(50, 9),
                        [&](StatusOr<Slot> r) { if (r.is_ok()) committed++; });
  }
  c.world.run_for(1 * kSeconds);
  ASSERT_EQ(committed, 5);

  for (auto& h : c.hosts) h->crash();
  for (auto& h : c.hosts) h->restart();
  c.world.run_for(5 * kSeconds);

  ReplicaHost* l2 = c.leader();
  ASSERT_NE(l2, nullptr);
  // After restart + re-election, all five entries re-commit/apply in order.
  c.world.run_for(2 * kSeconds);
  for (auto& h : c.hosts) {
    ASSERT_GE(h->applied.size(), 5u) << "node " << h->node->id();
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(h->applied[static_cast<size_t>(i)].header,
                std::string(1, static_cast<char>(i)));
    }
  }
}

}  // namespace
}  // namespace rspaxos::consensus
