// Whole-stack fault injection: seeded random schedules of follower/leader
// crashes and restarts (with WAL replay) while clients run a mixed workload.
// Invariant: every acknowledged write is durable and reads return the value
// of some acknowledged write that is at least as new as the last one the
// same client observed.
#include <gtest/gtest.h>

#include <map>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

struct NemesisKv : ::testing::TestWithParam<uint64_t> {};

TEST_P(NemesisKv, AcknowledgedWritesSurviveChaos) {
  const uint64_t seed = GetParam();
  sim::SimWorld world(seed);
  SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = true;
  opts.f = 1;
  opts.replica.heartbeat_interval = 20 * kMillis;
  opts.replica.election_timeout_min = 150 * kMillis;
  opts.replica.election_timeout_max = 300 * kMillis;
  opts.replica.lease_duration = 100 * kMillis;
  opts.replica.max_clock_drift = 10 * kMillis;
  // Mild link chaos on top of crashes.
  opts.link.drop_prob = 0.02;
  opts.link.dup_prob = 0.02;
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();

  KvClient::Options copts;
  copts.request_timeout = 400 * kMillis;
  copts.max_attempts = 500;
  auto client = cluster.make_client(0, copts);

  Rng rng(seed * 1000 + 3);
  constexpr int kKeys = 8;
  // acknowledged[k] = highest acked version per key.
  std::map<int, int> acknowledged;
  int next_version = 1;

  // Nemesis: at most one server down at a time (the configuration's F).
  int down = -1;
  TimeMicros next_nemesis = 500 * kMillis;

  int ops_done = 0;
  constexpr int kOps = 60;
  std::function<void()> next_op = [&] {
    if (ops_done >= kOps) return;
    int k = static_cast<int>(rng.next_below(kKeys));
    if (rng.chance(0.65)) {
      int v = next_version++;
      client->put("n" + std::to_string(k), to_bytes("v" + std::to_string(v)),
                  [&, k, v](Status s) {
                    if (s.is_ok()) {
                      acknowledged[k] = std::max(acknowledged[k], v);
                    }
                    ops_done++;
                    next_op();
                  });
    } else {
      int floor = acknowledged.count(k) ? acknowledged[k] : -1;
      client->get("n" + std::to_string(k), [&, k, floor](StatusOr<Bytes> r) {
        if (r.is_ok()) {
          int got = std::stoi(to_string(r.value()).substr(1));
          // Read must be at least as new as the last acked write we issued
          // (single client: our writes are ordered).
          EXPECT_GE(got, floor) << "stale read on key " << k << " seed " << seed;
        } else if (floor > 0) {
          EXPECT_NE(r.status().code(), Code::kNotFound)
              << "acked key n" << k << " vanished, seed " << seed;
        }
        ops_done++;
        next_op();
      });
    }
  };
  next_op();

  TimeMicros deadline = world.now() + 180 * kSeconds;
  while (ops_done < kOps && world.now() < deadline) {
    world.run_for(50 * kMillis);
    if (world.now() >= next_nemesis) {
      next_nemesis = world.now() + 1 * kSeconds +
                     static_cast<DurationMicros>(rng.next_below(2000)) * kMillis;
      if (down >= 0) {
        cluster.restart_server(down);
        down = -1;
      } else {
        down = static_cast<int>(rng.next_below(5));
        cluster.crash_server(down);
      }
    }
  }
  if (down >= 0) cluster.restart_server(down);
  world.run_for(5 * kSeconds);
  EXPECT_EQ(ops_done, kOps) << "liveness: workload did not finish, seed " << seed;

  // Post-chaos audit: every acknowledged key readable with version >= acked.
  for (const auto& [k, v] : acknowledged) {
    std::optional<StatusOr<Bytes>> out;
    client->get("n" + std::to_string(k), [&](StatusOr<Bytes> r) { out = std::move(r); });
    TimeMicros d2 = world.now() + 30 * kSeconds;
    while (!out.has_value() && world.now() < d2) world.run_for(10 * kMillis);
    ASSERT_TRUE(out.has_value()) << "key n" << k << " seed " << seed;
    ASSERT_TRUE(out->is_ok()) << "key n" << k << ": " << out->status().to_string()
                              << " seed " << seed;
    int got = std::stoi(to_string(out->value()).substr(1));
    EXPECT_GE(got, v) << "key n" << k << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NemesisKv, ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace rspaxos::kv
