// Server admission control under open-loop overload: past its budgets a
// server sheds with kOverloaded (bouncing work back to the client's jittered
// backoff) instead of queueing without bound, acknowledged writes stay
// durable through the storm, and load below the watermarks is untouched.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kv/cluster.h"
#include "load/open_loop.h"

namespace rspaxos::kv {
namespace {

constexpr size_t kInflightBudget = 8;

SimClusterOptions overload_opts() {
  SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = true;
  opts.f = 1;
  opts.kv.admission.max_inflight = kInflightBudget;
  return opts;
}

KvClient::Options windowed_client() {
  KvClient::Options copts;
  copts.request_timeout = 500 * kMillis;
  copts.max_attempts = 200;
  copts.max_inflight = 64;  // window deliberately deeper than the server budget
  return copts;
}

uint64_t total_shed(SimCluster& cluster) {
  uint64_t shed = 0;
  for (int s = 0; s < cluster.options().num_servers; ++s) {
    shed += cluster.server(s, 0)->stats().admission_shed;
  }
  return shed;
}

TEST(Saturation, OverloadShedsInsteadOfQueueingUnbounded) {
  sim::SimWorld world(41);
  SimClusterOptions opts = overload_opts();
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0, windowed_client());

  // Unique key per op: an acked put must remain readable with exactly its
  // value no matter how the pipeline reorders or sheds around it.
  std::set<int> acked;
  uint64_t resolved = 0;
  constexpr int kOps = 400;
  for (int i = 0; i < kOps; ++i) {
    client->put("sat-" + std::to_string(i), to_bytes("v" + std::to_string(i)),
                [&acked, &resolved, i](Status s) {
                  if (s.is_ok()) acked.insert(i);
                  ++resolved;
                });
  }
  // The window (64) dwarfs the per-server admission budget (8): the excess
  // must bounce with kOverloaded, never sit in a server queue.
  size_t max_inflight_seen = 0;
  TimeMicros deadline = world.now() + 120 * kSeconds;
  while (resolved < kOps && world.now() < deadline) {
    world.run_for(1 * kMillis);
    for (int s = 0; s < opts.num_servers; ++s) {
      max_inflight_seen = std::max(max_inflight_seen,
                                   cluster.server(s, 0)->admission_inflight());
    }
  }
  EXPECT_EQ(resolved, static_cast<uint64_t>(kOps)) << "every op must resolve";
  EXPECT_LE(max_inflight_seen, kInflightBudget)
      << "admission budget must bound the server's commit queue";
  EXPECT_GT(total_shed(cluster), 0u) << "overload must shed, not absorb";
  EXPECT_GT(client->stats().overload_backoffs, 0u)
      << "client must have absorbed kOverloaded with backoff";
  EXPECT_FALSE(acked.empty()) << "backoff+retry must make progress";

  // Durability audit: every acked key reads back its exact value.
  for (int i : acked) {
    std::optional<StatusOr<Bytes>> out;
    client->get("sat-" + std::to_string(i),
                [&out](StatusOr<Bytes> r) { out = std::move(r); });
    TimeMicros d2 = world.now() + 30 * kSeconds;
    while (!out.has_value() && world.now() < d2) world.run_for(5 * kMillis);
    ASSERT_TRUE(out.has_value() && out->is_ok()) << "acked key sat-" << i;
    EXPECT_EQ(to_string(out->value()), "v" + std::to_string(i));
  }
}

TEST(Saturation, BelowWatermarkLoadUnaffected) {
  sim::SimWorld world(42);
  SimClusterOptions opts = overload_opts();
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0, windowed_client());
  NodeContext* ctx = cluster.network().node(kClientBase);

  // 200 qps against a budget of 8 concurrent ops: Little's law keeps the
  // server far below its watermark, so admission must be invisible.
  load::OpenLoopSpec spec;
  spec.qps = 200;
  spec.value_size = 128;
  spec.key_space = 16;
  spec.duration = 2 * kSeconds;
  load::OpenLoopGen gen(ctx, client.get(), spec);
  bool finished = false;
  gen.start([&finished] { finished = true; });
  TimeMicros deadline = world.now() + 60 * kSeconds;
  while (!finished && world.now() < deadline) world.run_for(5 * kMillis);

  ASSERT_TRUE(finished);
  EXPECT_EQ(gen.recorder().failed(), 0u);
  EXPECT_GT(gen.recorder().ok(), 0u);
  EXPECT_EQ(total_shed(cluster), 0u) << "no shedding below the watermark";
  EXPECT_EQ(client->stats().overload_backoffs, 0u);
}

TEST(Saturation, QueueByteBudgetShedsBigValuesButAdmitsOversizedWhenIdle) {
  sim::SimWorld world(43);
  SimClusterOptions opts = overload_opts();
  opts.kv.admission.max_inflight = 0;        // isolate the byte budget
  opts.kv.admission.max_queue_bytes = 16 * 1024;
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0, windowed_client());

  // A burst of 8 KiB values: two fit the 16 KiB budget, the rest must bounce
  // at least once before retries drain them through.
  uint64_t resolved = 0;
  constexpr int kOps = 32;
  for (int i = 0; i < kOps; ++i) {
    client->put("big-" + std::to_string(i), Bytes(8 * 1024, 0x2a),
                [&resolved](Status) { ++resolved; });
  }
  TimeMicros deadline = world.now() + 120 * kSeconds;
  while (resolved < kOps && world.now() < deadline) world.run_for(5 * kMillis);
  EXPECT_EQ(resolved, static_cast<uint64_t>(kOps));
  EXPECT_GT(total_shed(cluster), 0u) << "byte budget must shed the burst";

  // Oversized single value: bigger than the whole budget, but the queue is
  // empty — refusing it would wedge such writes forever, so it is admitted.
  std::optional<Status> big;
  client->put("huge", Bytes(64 * 1024, 0x2b), [&big](Status s) { big = s; });
  deadline = world.now() + 60 * kSeconds;
  while (!big.has_value() && world.now() < deadline) world.run_for(5 * kMillis);
  ASSERT_TRUE(big.has_value());
  EXPECT_TRUE(big->is_ok()) << big->to_string();
}

}  // namespace
}  // namespace rspaxos::kv
