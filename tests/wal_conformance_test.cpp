// Parametrized WAL conformance suite: FileWal and SimWal are both Wal +
// MuxWal implementations and must agree on the observable contract —
// append/replay ordering, per-group truncate_prefix semantics, crash
// (torn-tail) behaviour, and fsync amortization across groups — even though
// one is a real segmented file and the other a simulated device.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>

#include "sim/sim_disk.h"
#include "sim/sim_world.h"
#include "storage/file_wal.h"
#include "storage/sim_wal.h"
#include "storage/wal.h"

namespace rspaxos {
namespace {

constexpr uint32_t kGroups = 4;

/// One WAL under test plus the machinery to drive its asynchrony: a real
/// flusher thread (FileWal) or a simulated world (SimWal). Ops issued through
/// the harness are tracked so drive() can block until everything is durable.
class WalHarness {
 public:
  virtual ~WalHarness() = default;

  virtual storage::MuxWal& mux() = 0;
  /// The same log through the legacy single-group Wal interface (== group 0).
  virtual storage::Wal& wal() = 0;

  void append(uint32_t g, Bytes rec) {
    issued_++;
    mux().append(g, std::move(rec), [this](Status s) {
      EXPECT_TRUE(s.is_ok()) << s.message();
      completed_++;
    });
  }

  /// Issues the truncation, drives to completion, returns reclaimed bytes.
  uint64_t truncate(uint32_t g, std::vector<Bytes> head) {
    issued_++;
    uint64_t reclaimed = 0;
    mux().truncate_prefix(g, std::move(head), [this, &reclaimed](StatusOr<uint64_t> r) {
      EXPECT_TRUE(r.is_ok());
      if (r.is_ok()) reclaimed = r.value();
      completed_++;
    });
    drive();
    return reclaimed;
  }

  std::vector<std::string> replayed(uint32_t g) {
    std::vector<std::string> out;
    mux().replay(g, [&](BytesView r) { out.push_back(to_string(r)); });
    return out;
  }

  /// Blocks until every op issued through the harness is durable.
  virtual void drive() = 0;
  /// Crash while appending `lost` to group g: the record must not survive,
  /// everything durable before it must.
  virtual void crash_mid_append(uint32_t g, Bytes lost) = 0;
  /// Clean shutdown + recovery, where the backend has a real restart.
  virtual void restart() = 0;

 protected:
  std::atomic<int> issued_{0};
  std::atomic<int> completed_{0};
};

class FileWalHarness final : public WalHarness {
 public:
  FileWalHarness() {
    path_ = (std::filesystem::temp_directory_path() /
             ("rspaxos_wal_conf_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    std::filesystem::remove(path_);
    open();
  }
  ~FileWalHarness() override {
    wal_.reset();
    std::error_code ec;
    for (const auto& e : std::filesystem::directory_iterator(
             std::filesystem::path(path_).parent_path(), ec)) {
      if (e.path().string().rfind(path_, 0) == 0) std::filesystem::remove(e.path(), ec);
    }
  }

  storage::MuxWal& mux() override { return *wal_; }
  storage::Wal& wal() override { return *wal_; }

  void drive() override {
    while (completed_.load() < issued_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void crash_mid_append(uint32_t g, Bytes lost) override {
    // A crash mid-write leaves a torn frame at the active segment's tail:
    // full header, bogus crc, half the payload. open() must trim it.
    drive();
    std::string active = wal_->segment_path(wal_->active_segment());
    wal_.reset();
    FILE* f = std::fopen(active.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t len = static_cast<uint32_t>(lost.size()) + 4;
    uint32_t crc = 0xdeadbeef;
    uint32_t gk = g << 1;
    std::fwrite(&len, 4, 1, f);
    std::fwrite(&crc, 4, 1, f);
    std::fwrite(&gk, 4, 1, f);
    std::fwrite(lost.data(), 1, lost.size() / 2, f);
    std::fclose(f);
    open();
  }

  void restart() override {
    drive();
    wal_.reset();
    open();
  }

 private:
  void open() {
    // A short real batching window so cross-group amortization is observable.
    auto w = storage::FileWal::open(path_, /*group_commit_window_us=*/5000,
                                    storage::FileWal::kDefaultSegmentBytes, kGroups);
    ASSERT_TRUE(w.is_ok()) << w.status().message();
    wal_ = std::move(w).value();
  }

  static inline std::atomic<int> counter_{0};
  std::string path_;
  std::unique_ptr<storage::FileWal> wal_;
};

class SimWalHarness final : public WalHarness {
 public:
  SimWalHarness()
      : world_(1), disk_(&world_, sim::DiskParams{100, 1e9}),
        wal_(&disk_, /*retain_for_replay=*/true, kGroups) {}

  storage::MuxWal& mux() override { return wal_; }
  storage::Wal& wal() override { return wal_; }

  void drive() override {
    world_.run_to_completion();
    EXPECT_EQ(completed_.load(), issued_.load());
  }

  void crash_mid_append(uint32_t g, Bytes lost) override {
    drive();
    wal_.append(g, std::move(lost),
                [](Status) { FAIL() << "lost record's callback fired"; });
    issued_++;
    completed_++;  // the callback must never fire; keep drive() balanced
    wal_.drop_unflushed();
    world_.run_to_completion();
  }

  void restart() override { drive(); }  // durable state survives in place

 private:
  sim::SimWorld world_;
  sim::SimDisk disk_;
  storage::SimWal wal_;
};

using HarnessFactory = std::function<std::unique_ptr<WalHarness>()>;

class WalConformance : public ::testing::TestWithParam<HarnessFactory> {
 protected:
  void SetUp() override { h_ = GetParam()(); }
  std::unique_ptr<WalHarness> h_;
};

TEST_P(WalConformance, AppendReplayRoundTripLegacyInterface) {
  h_->append(0, to_bytes("a"));
  h_->append(0, to_bytes("b"));
  h_->append(0, to_bytes("c"));
  h_->drive();
  // Group 0 and the legacy whole-log view are the same log.
  EXPECT_EQ(h_->replayed(0), (std::vector<std::string>{"a", "b", "c"}));
  std::vector<std::string> legacy;
  h_->wal().replay([&](BytesView r) { legacy.push_back(to_string(r)); });
  EXPECT_EQ(legacy, h_->replayed(0));
  EXPECT_GT(h_->wal().bytes_flushed(), 0u);
}

TEST_P(WalConformance, GroupsReplayIndependently) {
  h_->append(0, to_bytes("g0-1"));
  h_->append(1, to_bytes("g1-1"));
  h_->append(0, to_bytes("g0-2"));
  h_->append(3, to_bytes("g3-1"));
  h_->drive();
  EXPECT_EQ(h_->replayed(0), (std::vector<std::string>{"g0-1", "g0-2"}));
  EXPECT_EQ(h_->replayed(1), (std::vector<std::string>{"g1-1"}));
  EXPECT_EQ(h_->replayed(2), (std::vector<std::string>{}));
  EXPECT_EQ(h_->replayed(3), (std::vector<std::string>{"g3-1"}));
  // The group() facade is the same log viewed through the Wal interface.
  std::vector<std::string> via_view;
  h_->mux().group(1)->replay([&](BytesView r) { via_view.push_back(to_string(r)); });
  EXPECT_EQ(via_view, h_->replayed(1));
  EXPECT_EQ(h_->mux().group(kGroups), nullptr);
}

TEST_P(WalConformance, TruncateReplacesOnlyThatGroup) {
  h_->append(0, Bytes(256, 7));
  h_->append(1, to_bytes("keep-me"));
  h_->append(0, Bytes(256, 8));
  h_->drive();
  uint64_t reclaimed = h_->truncate(0, {to_bytes("head")});
  EXPECT_GE(reclaimed, 512u);
  h_->append(0, to_bytes("after"));
  h_->drive();
  EXPECT_EQ(h_->replayed(0), (std::vector<std::string>{"head", "after"}));
  EXPECT_EQ(h_->replayed(1), (std::vector<std::string>{"keep-me"}));
  EXPECT_EQ(h_->mux().group_truncated_bytes(0), reclaimed);
  EXPECT_EQ(h_->mux().group_truncated_bytes(1), 0u);
}

TEST_P(WalConformance, TruncateThenRestartReplaysHeadPlusTail) {
  h_->append(2, to_bytes("old-1"));
  h_->append(2, to_bytes("old-2"));
  h_->drive();
  h_->truncate(2, {to_bytes("h1"), to_bytes("h2")});
  h_->append(2, to_bytes("tail"));
  h_->restart();
  EXPECT_EQ(h_->replayed(2), (std::vector<std::string>{"h1", "h2", "tail"}));
}

TEST_P(WalConformance, CrashMidAppendLosesOnlyTheTornRecord) {
  h_->append(1, to_bytes("durable"));
  h_->crash_mid_append(1, Bytes(64, 0xee));
  EXPECT_EQ(h_->replayed(1), (std::vector<std::string>{"durable"}));
  // The recovered log keeps accepting appends.
  h_->append(1, to_bytes("recovered"));
  h_->drive();
  EXPECT_EQ(h_->replayed(1), (std::vector<std::string>{"durable", "recovered"}));
}

TEST_P(WalConformance, FlushesAmortizedAcrossGroups) {
  // A burst of appends spread over every group must coalesce into far fewer
  // device flushes than records — the shared log batches across shards.
  constexpr int kPerGroup = 8;
  uint64_t flushes_before = h_->mux().flush_ops();
  for (int i = 0; i < kPerGroup; ++i) {
    for (uint32_t g = 0; g < kGroups; ++g) {
      h_->append(g, Bytes(64, static_cast<uint8_t>(i)));
    }
  }
  h_->drive();
  uint64_t flushes = h_->mux().flush_ops() - flushes_before;
  EXPECT_LE(flushes, static_cast<uint64_t>(kPerGroup))
      << "32 cross-group appends should share flushes";
  for (uint32_t g = 0; g < kGroups; ++g) {
    EXPECT_EQ(h_->replayed(g).size(), static_cast<size_t>(kPerGroup));
    EXPECT_GT(h_->mux().group_bytes_flushed(g), 0u);
  }
}

TEST_P(WalConformance, PerReactorAccountingIdentityAcrossSplitLogs) {
  // Multi-reactor hosts split the machine log into one MuxWal per reactor
  // (placement: global group g -> reactor g % R, local index g / R). Model
  // that shape with two independent logs and check the accounting identity
  // each reactor must satisfy on its own: every byte the device flushed is
  // attributed to exactly one of the reactor's groups, and one reactor's
  // counters never move with the other's traffic.
  auto other = GetParam()();  // reactor 1's log; h_ plays reactor 0
  WalHarness* reactor[2] = {h_.get(), other.get()};
  constexpr uint32_t kGlobal = 2 * kGroups;
  constexpr size_t kRecBytes = 128;
  size_t per_group[kGlobal] = {};
  for (int round = 0; round < 3; ++round) {
    for (uint32_t g = 0; g < kGlobal; ++g) {
      if ((g / 2 + static_cast<uint32_t>(round)) % 2 == 0) continue;  // uneven load
      reactor[g % 2]->append(g / 2, Bytes(kRecBytes, static_cast<uint8_t>(g)));
      per_group[g]++;
    }
  }
  uint64_t r0_before_bytes = 0;  // reactor 0's counters, pre-cross-check
  reactor[0]->drive();
  reactor[1]->drive();
  for (int r = 0; r < 2; ++r) {
    uint64_t group_sum = 0;
    uint64_t payload_sum = 0;
    for (uint32_t lg = 0; lg < kGroups; ++lg) {
      group_sum += reactor[r]->mux().group_bytes_flushed(lg);
      payload_sum += per_group[2 * lg + static_cast<uint32_t>(r)] * kRecBytes;
    }
    // Per-group attribution covers at least every record's payload and sums
    // to no more than the device total (framing may only add, never lose).
    EXPECT_GE(group_sum, payload_sum) << "reactor " << r;
    EXPECT_LE(group_sum, reactor[r]->mux().machine_bytes_flushed()) << "reactor " << r;
    EXPECT_GT(reactor[r]->mux().flush_ops(), 0u) << "reactor " << r;
    if (r == 0) r0_before_bytes = reactor[0]->mux().machine_bytes_flushed();
  }
  // Isolation: traffic on reactor 1 must not move reactor 0's counters.
  reactor[1]->append(0, Bytes(kRecBytes, 0x7e));  // global group 1
  per_group[1]++;
  reactor[1]->drive();
  EXPECT_EQ(reactor[0]->mux().machine_bytes_flushed(), r0_before_bytes);
  // Each reactor's replay sees exactly its own groups' records.
  for (uint32_t g = 0; g < kGlobal; ++g) {
    EXPECT_EQ(reactor[g % 2]->replayed(g / 2).size(), per_group[g]) << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, WalConformance,
    ::testing::Values(HarnessFactory([]() -> std::unique_ptr<WalHarness> {
                        return std::make_unique<FileWalHarness>();
                      }),
                      HarnessFactory([]() -> std::unique_ptr<WalHarness> {
                        return std::make_unique<SimWalHarness>();
                      })),
    [](const ::testing::TestParamInfo<HarnessFactory>& info) {
      return info.index == 0 ? "FileWal" : "SimWal";
    });

}  // namespace
}  // namespace rspaxos
