// Tests for composite (batched) write instances: wire format, commit
// amortization, follower slice bookkeeping, recovery reads into a batch,
// ordering vs consistent reads, and deletes inside batches.
#include <gtest/gtest.h>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

struct BatchFixture {
  sim::SimWorld world{21};
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit BatchFixture(DurationMicros window = 5 * kMillis)
      : cluster(&world, options(window)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 500 * kMillis;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions options(DurationMicros window) {
    SimClusterOptions o;
    o.replica.heartbeat_interval = 20 * kMillis;
    o.replica.election_timeout_min = 150 * kMillis;
    o.replica.election_timeout_max = 300 * kMillis;
    o.replica.lease_duration = 100 * kMillis;
    o.kv.batch_window = window;
    return o;
  }

  template <typename Pred>
  bool run_until(Pred done, DurationMicros max = 30 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(2 * kMillis);
    return done();
  }
};

TEST(BatchWire, HeaderRoundTrip) {
  BatchHeader h;
  h.items.push_back(BatchItem{Op::kPut, "alpha", 0, 100});
  h.items.push_back(BatchItem{Op::kDelete, "beta", 100, 0});
  h.items.push_back(BatchItem{Op::kPut, "gamma", 100, 77});
  Bytes enc = h.encode();
  EXPECT_EQ(peek_op(enc).value(), Op::kBatch);
  auto d = BatchHeader::decode(enc);
  ASSERT_TRUE(d.is_ok());
  ASSERT_EQ(d.value().items.size(), 3u);
  EXPECT_EQ(d.value().items[0].key, "alpha");
  EXPECT_EQ(d.value().items[1].op, Op::kDelete);
  EXPECT_EQ(d.value().items[2].offset, 100u);
  EXPECT_EQ(d.value().items[2].len, 77u);
}

TEST(BatchWire, RejectsNonBatchAndJunk) {
  CommandHeader h;
  h.op = Op::kPut;
  h.key = "x";
  EXPECT_FALSE(BatchHeader::decode(h.encode()).is_ok());
  EXPECT_FALSE(BatchHeader::decode(Bytes{}).is_ok());
  EXPECT_FALSE(peek_op(Bytes{}).is_ok());
}

TEST(Batching, ConcurrentWritesShareOneInstance) {
  BatchFixture f;
  int done = 0;
  constexpr int kWrites = 10;
  for (int i = 0; i < kWrites; ++i) {
    f.client->put("bk" + std::to_string(i), Bytes(200, static_cast<uint8_t>(i)),
                  [&](Status s) {
                    EXPECT_TRUE(s.is_ok());
                    done++;
                  });
  }
  ASSERT_TRUE(f.run_until([&] { return done == kWrites; }));
  int leader = f.cluster.leader_server_of(0);
  ASSERT_GE(leader, 0);
  const auto& stats = f.cluster.server(leader, 0)->stats();
  // All ten writes landed in very few composite instances.
  EXPECT_GE(stats.batches_committed, 1u);
  EXPECT_LE(f.cluster.server(leader, 0)->replica().stats().commits, 4u);
  // And every value reads back correctly.
  for (int i = 0; i < kWrites; ++i) {
    std::optional<Bytes> got;
    f.client->get("bk" + std::to_string(i), [&](StatusOr<Bytes> r) {
      ASSERT_TRUE(r.is_ok());
      got = std::move(r).value();
    });
    ASSERT_TRUE(f.run_until([&] { return got.has_value(); }));
    EXPECT_EQ(*got, Bytes(200, static_cast<uint8_t>(i)));
  }
}

TEST(Batching, FollowersTrackSlices) {
  BatchFixture f;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    f.client->put("s" + std::to_string(i), Bytes(300 + i, 1), [&](Status) { done++; });
  }
  ASSERT_TRUE(f.run_until([&] { return done == 3; }));
  f.world.run_for(300 * kMillis);
  int leader = f.cluster.leader_server_of(0);
  for (int s = 0; s < 5; ++s) {
    if (s == leader) continue;
    const auto* rec = f.cluster.server(s, 0)->store().find("s1");
    ASSERT_NE(rec, nullptr) << "server " << s;
    EXPECT_FALSE(rec->complete);
    EXPECT_EQ(rec->slice_len, 301u);
    // Slice sits inside the instance payload.
    EXPECT_LE(rec->slice_off + rec->slice_len, rec->full_len);
  }
}

TEST(Batching, RecoveryReadSlicesOneKeyOutOfTheBatch) {
  BatchFixture f;
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    f.client->put("rr" + std::to_string(i), Bytes(128, static_cast<uint8_t>(0x40 + i)),
                  [&](Status) { done++; });
  }
  ASSERT_TRUE(f.run_until([&] { return done == 5; }));
  f.world.run_for(300 * kMillis);

  int old_leader = f.cluster.leader_server_of(0);
  f.cluster.crash_server(old_leader);
  ASSERT_TRUE(f.run_until([&] {
    int l = f.cluster.leader_server_of(0);
    return l >= 0 && l != old_leader;
  }));

  // Read one key: the new leader decodes the whole instance payload and
  // returns just this key's slice.
  std::optional<Bytes> got;
  f.client->get("rr3", [&](StatusOr<Bytes> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    got = std::move(r).value();
  });
  ASSERT_TRUE(f.run_until([&] { return got.has_value(); }));
  EXPECT_EQ(*got, Bytes(128, 0x43));
  int new_leader = f.cluster.leader_server_of(0);
  EXPECT_GE(f.cluster.server(new_leader, 0)->stats().recovery_reads, 1u);
}

TEST(Batching, DeleteInsideBatch) {
  BatchFixture f;
  bool put_done = false;
  f.client->put("doomed", to_bytes("x"), [&](Status) { put_done = true; });
  ASSERT_TRUE(f.run_until([&] { return put_done; }));
  int done = 0;
  f.client->put("kept", to_bytes("y"), [&](Status) { done++; });
  f.client->del("doomed", [&](Status) { done++; });
  ASSERT_TRUE(f.run_until([&] { return done == 2; }));

  std::optional<Status> missing;
  f.client->get("doomed", [&](StatusOr<Bytes> r) { missing = r.status(); });
  ASSERT_TRUE(f.run_until([&] { return missing.has_value(); }));
  EXPECT_EQ(missing->code(), Code::kNotFound);
  std::optional<Bytes> kept;
  f.client->get("kept", [&](StatusOr<Bytes> r) {
    ASSERT_TRUE(r.is_ok());
    kept = std::move(r).value();
  });
  ASSERT_TRUE(f.run_until([&] { return kept.has_value(); }));
  EXPECT_EQ(to_string(*kept), "y");
}

TEST(Batching, ConsistentReadFlushesTheBatch) {
  BatchFixture f(50 * kMillis);  // long window: reads must not wait it out
  bool put_acked = false;
  f.client->put("flush-k", to_bytes("v"), [&](Status) { put_acked = true; });
  // Immediately issue a consistent read from another client; it must flush
  // the queued batch and observe the value.
  auto reader = f.cluster.make_client(1);
  std::optional<StatusOr<Bytes>> read;
  reader->consistent_get("flush-k", [&](StatusOr<Bytes> r) { read = std::move(r); });
  ASSERT_TRUE(f.run_until([&] { return read.has_value() && put_acked; }));
  ASSERT_TRUE(read->is_ok()) << read->status().to_string();
  EXPECT_EQ(to_string(read->value()), "v");
}

TEST(Batching, SizeThresholdFlushesEarly) {
  BatchFixture f(1 * kSeconds);  // huge window; byte cap must trigger
  int done = 0;
  // Default cap is 4 MB: two 3 MB writes cannot share one batch.
  for (int i = 0; i < 2; ++i) {
    f.client->put("big" + std::to_string(i), Bytes(3u << 20, 1),
                  [&](Status s) {
                    EXPECT_TRUE(s.is_ok());
                    done++;
                  });
  }
  ASSERT_TRUE(f.run_until([&] { return done == 2; }, 60 * kSeconds));
}

}  // namespace
}  // namespace rspaxos::kv
