// Pipelined client over the real TCP stack: a deep burst through a narrow
// admission budget exercises the full window / kOverloaded / jittered-backoff
// loop across threads (loop-thread client, I/O-thread transport, fsync WAL).
// Every op must resolve, acked writes must read back, and the servers must
// have visibly shed rather than queued the excess.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>

#include "kv/client.h"
#include "node/tcp_cluster.h"

namespace rspaxos {
namespace {

TEST(PipelineTcp, BurstThroughNarrowAdmissionResolvesEverything) {
  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_pipe_tcp_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  node::TcpClusterOptions opts;
  opts.num_servers = 3;
  opts.num_groups = 1;
  opts.rs_mode = true;  // theta(1,3): RS degenerates to replication at N=3
  opts.f = 1;
  opts.data_dir = dir.string();
  opts.replica.heartbeat_interval = 30 * kMillis;
  opts.replica.election_timeout_min = 300 * kMillis;
  opts.replica.election_timeout_max = 600 * kMillis;
  opts.replica.lease_duration = 250 * kMillis;
  // Budget far below the client window: the burst MUST bounce through
  // kOverloaded + backoff, not drain in one admission.
  opts.kv.admission.max_inflight = 4;

  auto started = node::TcpCluster::start(opts);
  ASSERT_TRUE(started.is_ok()) << started.status().to_string();
  auto cluster = std::move(started).value();

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (cluster->leader_server_of(0) < 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(cluster->leader_server_of(0), 0) << "no leader elected";

  auto cnode = cluster->start_client();
  ASSERT_TRUE(cnode.is_ok()) << cnode.status().to_string();
  kv::KvClient::Options copts;
  copts.request_timeout = 5000 * kMillis;
  copts.max_attempts = 1000;
  copts.max_inflight = 32;
  kv::KvClient client(cnode.value(), cluster->routing(), copts);
  cnode.value()->loop().post([&] { cnode.value()->set_handler(&client); });

  constexpr int kOps = 200;
  std::atomic<int> resolved{0};
  std::atomic<int> ok{0};
  cnode.value()->loop().post([&] {
    for (int i = 0; i < kOps; ++i) {
      client.put("pt-" + std::to_string(i), Bytes(512, static_cast<uint8_t>(i)),
                 [&resolved, &ok](Status s) {
                   if (s.is_ok()) ok.fetch_add(1, std::memory_order_relaxed);
                   resolved.fetch_add(1, std::memory_order_relaxed);
                 });
    }
  });

  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (resolved.load(std::memory_order_relaxed) < kOps &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(resolved.load(), kOps) << "every burst op must resolve";
  EXPECT_EQ(ok.load(), kOps) << "retries through backoff must all land";

  // The narrow budget was real: servers shed, the client backed off. Stats
  // are read via the loop so they never race the protocol thread.
  std::promise<std::pair<uint64_t, uint64_t>> stat_p;
  auto stat_f = stat_p.get_future();
  cnode.value()->loop().post([&] {
    stat_p.set_value({client.stats().overload_backoffs, client.stats().completed});
  });
  ASSERT_EQ(stat_f.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  auto [backoffs, completed] = stat_f.get();
  EXPECT_GT(backoffs, 0u) << "burst never tripped admission";
  EXPECT_GE(completed, static_cast<uint64_t>(kOps));
  uint64_t shed = 0;
  for (int s = 0; s < opts.num_servers; ++s) {
    shed += cluster->server(s, 0)->stats().admission_shed;
  }
  EXPECT_GT(shed, 0u);

  // Spot-check durability through the real WAL path.
  for (int i : {0, kOps / 2, kOps - 1}) {
    std::promise<StatusOr<Bytes>> got_p;
    auto got_f = got_p.get_future();
    std::string key = "pt-" + std::to_string(i);
    cnode.value()->loop().post([&, key] {
      client.get(key, [&got_p](StatusOr<Bytes> r) { got_p.set_value(std::move(r)); });
    });
    ASSERT_EQ(got_f.wait_for(std::chrono::seconds(20)), std::future_status::ready);
    auto got = got_f.get();
    ASSERT_TRUE(got.is_ok()) << key << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), Bytes(512, static_cast<uint8_t>(i)));
  }

  // Quiesce the client on its loop before teardown (transport dies first).
  std::promise<void> quiesced;
  auto qf = quiesced.get_future();
  cnode.value()->loop().post([&] {
    client.cancel_all(Status::timeout("test teardown"));
    cnode.value()->set_handler(nullptr);
    quiesced.set_value();
  });
  qf.wait();
  cluster.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rspaxos
