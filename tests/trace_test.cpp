// Trace-propagation tests over the simulated cluster: a committed put must
// leave ONE connected span tree whose spans were recorded on several distinct
// nodes (client, leader, acceptors) — proof that the SpanContext actually
// crossed the wire in the frame header rather than every node minting its own
// trace. The tree contract must also survive a leader failover: spans from
// the doomed leader's era may be abandoned, but post-election commits trace
// exactly like first-era ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"
#include "obs/trace.h"
#include "sim/sim_world.h"

namespace rspaxos {
namespace {

using obs::CommitTrace;
using obs::TraceSpan;
using obs::Tracer;

/// Every non-root span's parent must exist within the same trace.
void expect_connected(const CommitTrace& t) {
  for (const TraceSpan& s : t.spans) {
    if (s.id == t.root) {
      EXPECT_EQ(s.parent, 0u);
      continue;
    }
    bool parent_known = std::any_of(
        t.spans.begin(), t.spans.end(),
        [&s](const TraceSpan& p) { return p.id == s.parent; });
    EXPECT_TRUE(parent_known) << "orphan span " << s.name << " on node " << s.node;
  }
}

/// The trace for one committed put: full phase set, connected, multi-node.
const CommitTrace* find_commit_trace(const std::vector<CommitTrace>& traces) {
  for (const CommitTrace& t : traces) {
    bool has_net = std::any_of(t.spans.begin(), t.spans.end(), [](const TraceSpan& s) {
      return s.name.rfind("net_accept:", 0) == 0;
    });
    if (t.find("client_rpc") != nullptr && t.find("commit") != nullptr &&
        t.find("quorum_wait") != nullptr && has_net) {
      return &t;
    }
  }
  return nullptr;
}

struct Fixture {
  sim::SimWorld world{7};
  kv::SimCluster cluster;

  Fixture() : cluster(&world, [] {
    kv::SimClusterOptions o;
    o.num_servers = 5;
    o.f = 1;  // theta(3,5)
    return o;
  }()) {}

  Status put(kv::KvClient* client, const std::string& key, const std::string& val) {
    bool done = false;
    Status st = Status::ok();
    client->put(key, to_bytes(val), [&](Status s) {
      st = s;
      done = true;
    });
    TimeMicros deadline = world.now() + 60 * kSeconds;
    while (!done && world.now() < deadline) world.run_for(5 * kMillis);
    return done ? st : Status::timeout("put " + key);
  }
};

TEST(TracePropagation, CommitSpanTreeCoversClientLeaderAndAcceptors) {
  Fixture f;
  f.cluster.wait_for_leaders();
  auto client = f.cluster.make_client(0);

  Tracer::global().clear();
  Tracer::global().set_enabled(true);
  ASSERT_TRUE(f.put(client.get(), "prop-key", "prop-value").is_ok());

  const auto traces = Tracer::global().slowest(16);
  const CommitTrace* t = find_commit_trace(traces);
  ASSERT_NE(t, nullptr) << Tracer::global().slowest_json(16);
  expect_connected(*t);

  // The same trace id collected spans from several processes-worth of nodes:
  // the client endpoint, the leader, and at least a write quorum's worth of
  // acceptor-side wal_fsync spans recorded under the propagated context.
  std::set<uint32_t> nodes;
  for (const TraceSpan& s : t->spans) nodes.insert(s.node);
  EXPECT_GE(nodes.size(), 3u) << "spans did not cross the wire: "
                              << Tracer::global().slowest_json(16);
  uint32_t leader_node = t->find("commit")->node;
  EXPECT_NE(t->find("client_rpc")->node, leader_node);
  int follower_fsyncs = 0;
  for (const TraceSpan& s : t->spans) {
    if (s.name == "wal_fsync" && s.node != leader_node) follower_fsyncs++;
  }
  // theta(3,5): QW=4 durable shares, so at least QW-1=3 follower fsyncs were
  // traced (minus any still open at root end — require a majority of them).
  EXPECT_GE(follower_fsyncs, 2) << Tracer::global().slowest_json(16);
}

TEST(TracePropagation, SpanTreeSurvivesLeaderFailover) {
  Fixture f;
  f.cluster.wait_for_leaders();
  auto client = f.cluster.make_client(0);
  ASSERT_TRUE(f.put(client.get(), "pre-crash", "v0").is_ok());

  int old_leader = f.cluster.leader_server_of(0);
  ASSERT_GE(old_leader, 0);
  f.cluster.crash_server(old_leader);
  TimeMicros deadline = f.world.now() + 120 * kSeconds;
  while (f.world.now() < deadline) {
    int l = f.cluster.leader_server_of(0);
    if (l >= 0 && l != old_leader) break;
    f.world.run_for(10 * kMillis);
  }
  int new_leader = f.cluster.leader_server_of(0);
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, old_leader);

  // Only post-election traffic from here on.
  Tracer::global().clear();
  Tracer::global().set_enabled(true);
  ASSERT_TRUE(f.put(client.get(), "post-crash", "v1").is_ok());

  const auto traces = Tracer::global().slowest(16);
  const CommitTrace* t = find_commit_trace(traces);
  ASSERT_NE(t, nullptr) << Tracer::global().slowest_json(16);
  expect_connected(*t);
  EXPECT_TRUE(t->done);
  // The commit span now lives on the new leader's endpoint.
  EXPECT_EQ(t->find("commit")->node,
            static_cast<uint32_t>(kv::endpoint_id(new_leader, 0)));
  // The crashed server contributed nothing to the post-election tree.
  for (const TraceSpan& s : t->spans) {
    if (s.name == "client_rpc") continue;  // client endpoint, not a server
    EXPECT_NE(s.node, static_cast<uint32_t>(kv::endpoint_id(old_leader, 0)))
        << s.name;
  }
}

}  // namespace
}  // namespace rspaxos
