// Multi-reactor NodeHost invariants, over both substrates:
//  - placement: group g lives on reactor g % R, each reactor with its own
//    event loop (TCP: own listen port + I/O thread + FileWal);
//  - isolation: a stalled reactor must not stop groups on other reactors
//    from committing (the whole point of sharding the host);
//  - recovery: a whole-machine restart replays every reactor's WAL and
//    brings back every group, wherever it was placed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>

#include "kv/client.h"
#include "kv/cluster.h"
#include "node/tcp_cluster.h"

namespace rspaxos {
namespace {

template <typename Pred>
bool poll_until(Pred done, int timeout_ms = 60000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return done();
}

/// The i-th key routed to shard `group` of `num_groups` under the current
/// hash contract.
std::string key_in_group(uint32_t group, uint32_t num_groups, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "mr/" + std::to_string(n);
    if (kv::shard_of(key, num_groups) == group && found++ == i) return key;
  }
}

Bytes value_for(int i) { return Bytes(512, static_cast<uint8_t>('a' + (i % 26))); }

/// Client bound to a TcpCluster, with promise-bridged put/get like the other
/// TCP suites use.
struct TcpClient {
  net::TcpNode* cnode = nullptr;
  std::unique_ptr<kv::KvClient> client;

  void start(node::TcpCluster& cluster, DurationMicros request_timeout) {
    auto cn = cluster.start_client();
    ASSERT_TRUE(cn.is_ok()) << cn.status().to_string();
    cnode = cn.value();
    kv::KvClient::Options copts;
    copts.request_timeout = request_timeout;
    copts.max_attempts = 1000;
    client = std::make_unique<kv::KvClient>(cnode, cluster.routing(), copts);
    cnode->loop().post([this] { cnode->set_handler(client.get()); });
  }

  /// Fire-and-collect put: returns the future, does not wait.
  std::future<Status> put_async(const std::string& key, Bytes value) {
    auto done = std::make_shared<std::promise<Status>>();
    auto fut = done->get_future();
    cnode->loop().post([this, key, value = std::move(value), done]() mutable {
      client->put(key, std::move(value), [done](Status s) { done->set_value(s); });
    });
    return fut;
  }

  Status put(const std::string& key, Bytes value, int timeout_s = 30) {
    auto fut = put_async(key, std::move(value));
    if (fut.wait_for(std::chrono::seconds(timeout_s)) != std::future_status::ready) {
      return Status::timeout("put " + key);
    }
    return fut.get();
  }

  StatusOr<Bytes> get(const std::string& key) {
    auto done = std::make_shared<std::promise<StatusOr<Bytes>>>();
    auto fut = done->get_future();
    cnode->loop().post([this, key, done] {
      client->get(key, [done](StatusOr<Bytes> r) { done->set_value(std::move(r)); });
    });
    if (fut.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
      return Status::timeout("get " + key);
    }
    return fut.get();
  }
};

void wait_for_leaders(node::TcpCluster& cluster, uint32_t groups) {
  ASSERT_TRUE(poll_until([&] {
    for (uint32_t g = 0; g < groups; ++g) {
      if (cluster.leader_server_of(g) < 0) return false;
    }
    return true;
  })) << "not every group elected a leader";
}

// (a) Placement + isolation: with two reactors, group 1's reactor on the
// leader machine is put to sleep; group 0 (other reactor, same machine) must
// keep committing for the whole stall, and group 1's write completes only
// once its reactor wakes.
TEST(MultiReactor, GroupsOnHealthyReactorsProgressWhileOneReactorStalls) {
  constexpr int kServers = 3;
  constexpr uint32_t kGroups = 2;
  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_mr_stall_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  node::TcpClusterOptions opts;
  opts.num_servers = kServers;
  opts.num_groups = kGroups;
  opts.reactors = 2;
  opts.f = 1;
  opts.rs_mode = false;  // 3 servers: classic majority quorums
  opts.data_dir = dir.string();
  opts.spread_leaders = false;  // bootstrap both groups toward one machine
  opts.replica.heartbeat_interval = 50 * kMillis;
  // Elections must NOT fire during the deliberate stall below, or the test
  // would measure failover instead of reactor isolation.
  opts.replica.election_timeout_min = 12000 * kMillis;
  opts.replica.election_timeout_max = 16000 * kMillis;
  opts.replica.lease_duration = 10000 * kMillis;

  auto started = node::TcpCluster::start(opts);
  ASSERT_TRUE(started.is_ok()) << started.status().to_string();
  auto cluster = std::move(started).value();

  // Structural placement contract: R loops per machine, group g on loop g % R.
  EXPECT_EQ(cluster->reactors(), 2);
  for (int s = 0; s < kServers; ++s) {
    ASSERT_NE(cluster->endpoint(s, 0), nullptr);
    ASSERT_NE(cluster->endpoint(s, 1), nullptr);
    EXPECT_NE(&cluster->endpoint(s, 0)->loop(), &cluster->endpoint(s, 1)->loop())
        << "server " << s << ": reactors must not share a loop";
    EXPECT_EQ(cluster->host(s).num_reactors(), 2u);
    EXPECT_EQ(cluster->host(s).reactor_of(0), 0u);
    EXPECT_EQ(cluster->host(s).reactor_of(1), 1u);
    // One multiplexed log per reactor, each covering its own group only.
    EXPECT_EQ(cluster->wal(s, 0).num_groups(), 1u);
    EXPECT_EQ(cluster->wal(s, 1).num_groups(), 1u);
  }

  wait_for_leaders(*cluster, kGroups);
  // Bootstrap points both groups at server 0, but that is a hint, not a
  // guarantee (a lost early prepare can hand a group to another server's
  // retry campaign). Stall whichever machine actually leads group 1.
  int lead1 = cluster->leader_server_of(1);
  ASSERT_GE(lead1, 0);

  TcpClient c;
  c.start(*cluster, 2000 * kMillis);
  if (HasFatalFailure()) return;
  ASSERT_TRUE(c.put(key_in_group(0, kGroups, 0), value_for(0)).is_ok());
  ASSERT_TRUE(c.put(key_in_group(1, kGroups, 0), value_for(0)).is_ok());

  // Stall group 1's reactor on the leader machine: a task that sleeps on the
  // loop models a reactor wedged by slow work (the exact failure one loop
  // per machine used to spread to every group).
  constexpr auto kStall = std::chrono::milliseconds(4000);
  auto stall_started = std::make_shared<std::promise<void>>();
  auto started_fut = stall_started->get_future();
  cluster->endpoint(lead1, 1)->loop().post([stall_started, kStall] {
    stall_started->set_value();
    std::this_thread::sleep_for(kStall);
  });
  ASSERT_EQ(started_fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  auto t0 = std::chrono::steady_clock::now();

  // Group 1's write cannot commit while its leader reactor sleeps.
  auto stalled_put = c.put_async(key_in_group(1, kGroups, 1), value_for(1));

  // Group 0 (reactor 0, same machine) commits throughout the stall.
  int committed_during_stall = 0;
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(c.put(key_in_group(0, kGroups, i), value_for(i)).is_ok())
        << "healthy-reactor put " << i << " failed mid-stall";
    if (std::chrono::steady_clock::now() - t0 < kStall) committed_during_stall++;
  }
  EXPECT_GT(committed_during_stall, 0)
      << "no healthy-reactor commit landed inside the stall window — the "
         "stall did not overlap the writes, so the test proved nothing";
  // While inside the stall window, the stalled group's put must still be
  // pending (its only leader is asleep and elections are off).
  if (std::chrono::steady_clock::now() - t0 < kStall - std::chrono::seconds(1)) {
    EXPECT_EQ(stalled_put.wait_for(std::chrono::seconds(0)),
              std::future_status::timeout)
        << "group 1 committed while its reactor was asleep";
  }

  // Once the reactor wakes, the queued write completes.
  ASSERT_EQ(stalled_put.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(stalled_put.get().is_ok());
  auto got = c.get(key_in_group(1, kGroups, 1));
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), value_for(1));

  cluster.reset();
  c.client.reset();
  std::filesystem::remove_all(dir);
}

// (b) Whole-machine restart: every group recovers from its reactor's WAL,
// wherever placement put it (G=4 over R=2: two groups per log, two logs per
// machine, `wal` and `wal.r1` files).
TEST(MultiReactor, WholeMachineRestartRecoversEveryGroupAcrossReactorWals) {
  constexpr int kServers = 3;
  constexpr uint32_t kGroups = 4;
  constexpr int kKeysPerGroup = 3;
  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_mr_restart_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  node::TcpClusterOptions opts;
  opts.num_servers = kServers;
  opts.num_groups = kGroups;
  opts.reactors = 2;
  opts.f = 1;
  opts.rs_mode = false;
  opts.data_dir = dir.string();
  opts.replica.heartbeat_interval = 30 * kMillis;
  opts.replica.election_timeout_min = 300 * kMillis;
  opts.replica.election_timeout_max = 600 * kMillis;
  opts.replica.lease_duration = 250 * kMillis;

  {
    auto started = node::TcpCluster::start(opts);
    ASSERT_TRUE(started.is_ok()) << started.status().to_string();
    auto cluster = std::move(started).value();
    wait_for_leaders(*cluster, kGroups);
    TcpClient c;
    c.start(*cluster, 2000 * kMillis);
    if (HasFatalFailure()) return;
    for (uint32_t g = 0; g < kGroups; ++g) {
      for (int i = 0; i < kKeysPerGroup; ++i) {
        ASSERT_TRUE(c.put(key_in_group(g, kGroups, i), value_for(i)).is_ok())
            << "group " << g << " key " << i;
      }
    }
    // Both reactor logs on every machine saw traffic (groups 0,2 vs 1,3).
    for (int s = 0; s < kServers; ++s) {
      EXPECT_GT(cluster->wal(s, 0).machine_bytes_flushed(), 0u) << "s" << s;
      EXPECT_GT(cluster->wal(s, 1).machine_bytes_flushed(), 0u) << "s" << s;
    }
    cluster.reset();  // clean whole-cluster shutdown, WAL files remain
    c.client.reset();
  }

  // Same data_dir, same reactor count: every group must come back from the
  // per-reactor logs with all its data.
  auto restarted = node::TcpCluster::start(opts);
  ASSERT_TRUE(restarted.is_ok()) << restarted.status().to_string();
  auto cluster = std::move(restarted).value();
  wait_for_leaders(*cluster, kGroups);
  TcpClient c;
  c.start(*cluster, 2000 * kMillis);
  if (HasFatalFailure()) return;
  for (uint32_t g = 0; g < kGroups; ++g) {
    for (int i = 0; i < kKeysPerGroup; ++i) {
      auto got = c.get(key_in_group(g, kGroups, i));
      ASSERT_TRUE(got.is_ok())
          << "group " << g << " key " << i << ": " << got.status().to_string();
      EXPECT_EQ(got.value(), value_for(i)) << "group " << g << " key " << i;
    }
    // And the recovered group keeps accepting writes.
    ASSERT_TRUE(
        c.put(key_in_group(g, kGroups, kKeysPerGroup), value_for(99)).is_ok())
        << "group " << g << " rejected writes after restart";
  }

  cluster.reset();
  c.client.reset();
  std::filesystem::remove_all(dir);
}

// Machine crash + rejoin in the sim: un-synced records on EVERY reactor log
// of the crashed machine are lost, yet all groups recover and the machine
// catches back up (placement-independent recovery, deterministic clock).
TEST(MultiReactor, SimCrashedMachineRejoinsWithAllReactorLogs) {
  constexpr int kServers = 3;
  constexpr int kGroups = 4;
  sim::SimWorld world(91);
  kv::SimClusterOptions opts;
  opts.num_servers = kServers;
  opts.num_groups = kGroups;
  opts.reactors = 2;
  opts.rs_mode = false;
  opts.spread_leaders = false;  // server 0 leads everything; crash server 1
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0);

  auto put = [&](const std::string& key, Bytes value) {
    bool done = false;
    Status st = Status::ok();
    client->put(key, std::move(value), [&](Status s) {
      st = s;
      done = true;
    });
    TimeMicros deadline = world.now() + 60 * kSeconds;
    while (!done && world.now() < deadline) world.run_for(5 * kMillis);
    EXPECT_TRUE(done);
    return st;
  };

  for (int g = 0; g < kGroups; ++g) {
    ASSERT_TRUE(
        put(key_in_group(static_cast<uint32_t>(g), kGroups, 0), value_for(g)).is_ok());
  }

  cluster.crash_server(1);
  // The quorum of the two live servers keeps every group writable.
  for (int g = 0; g < kGroups; ++g) {
    ASSERT_TRUE(
        put(key_in_group(static_cast<uint32_t>(g), kGroups, 1), value_for(g)).is_ok())
        << "group " << g << " lost availability after one crash";
  }

  cluster.restart_server(1);
  world.run_for(2 * kSeconds);
  for (int g = 0; g < kGroups; ++g) {
    ASSERT_TRUE(
        put(key_in_group(static_cast<uint32_t>(g), kGroups, 2), value_for(g)).is_ok());
  }
  // The rejoined machine's replicas catch up in every group: its commit
  // index reaches the leader's.
  TimeMicros deadline = world.now() + 60 * kSeconds;
  auto caught_up = [&] {
    for (int g = 0; g < kGroups; ++g) {
      auto* leader = cluster.server(0, g);
      auto* rejoined = cluster.server(1, g);
      if (leader == nullptr || rejoined == nullptr) return false;
      if (rejoined->replica().commit_index() < leader->replica().commit_index()) {
        return false;
      }
    }
    return true;
  };
  while (!caught_up() && world.now() < deadline) world.run_for(10 * kMillis);
  EXPECT_TRUE(caught_up()) << "rejoined machine never caught up on every group";
}

}  // namespace
}  // namespace rspaxos
