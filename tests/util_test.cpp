// Unit tests for the util substrate: marshal, crc32, rng, histogram,
// event loop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>

#include <map>
#include <vector>

#include "util/crc32.h"
#include "util/event_loop.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/marshal.h"
#include "util/rng.h"
#include "util/slab_map.h"
#include "util/status.h"
#include "util/timing_wheel.h"

namespace rspaxos {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::ok().is_ok());
  Status s = Status::invalid("boom");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "boom");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: boom");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::not_found("x"));
  EXPECT_FALSE(e.is_ok());
  EXPECT_EQ(e.status().code(), Code::kNotFound);
}

TEST(Marshal, RoundTripPrimitives) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-12345);
  Bytes buf = w.take();

  Reader r(buf);
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  int64_t e;
  ASSERT_TRUE(r.u8(a).is_ok());
  ASSERT_TRUE(r.u16(b).is_ok());
  ASSERT_TRUE(r.u32(c).is_ok());
  ASSERT_TRUE(r.u64(d).is_ok());
  ASSERT_TRUE(r.i64(e).is_ok());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xbeef);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0123456789abcdefULL);
  EXPECT_EQ(e, -12345);
  EXPECT_TRUE(r.done());
}

TEST(Marshal, VarintBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xffffffffull, ~0ull}) {
    Writer w;
    w.varint(v);
    Reader r(w.buffer());
    uint64_t out;
    ASSERT_TRUE(r.varint(out).is_ok());
    EXPECT_EQ(out, v);
  }
}

TEST(Marshal, BytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("hello"));
  w.str("world");
  w.bytes(Bytes{});
  Bytes buf = w.take();
  Reader r(buf);
  Bytes b;
  std::string s;
  Bytes empty;
  ASSERT_TRUE(r.bytes(b).is_ok());
  ASSERT_TRUE(r.str(s).is_ok());
  ASSERT_TRUE(r.bytes(empty).is_ok());
  EXPECT_EQ(to_string(b), "hello");
  EXPECT_EQ(s, "world");
  EXPECT_TRUE(empty.empty());
}

TEST(Marshal, TruncationDetected) {
  Writer w;
  w.u64(7);
  Bytes buf = w.take();
  buf.resize(3);
  Reader r(buf);
  uint64_t v;
  EXPECT_FALSE(r.u64(v).is_ok());
}

TEST(Marshal, BadLengthPrefixDetected) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes follow
  w.raw(to_bytes("short"));
  Reader r(w.buffer());
  Bytes out;
  EXPECT_FALSE(r.bytes(out).is_ok());
}

TEST(Crc32, KnownVectors) {
  // CRC32C("123456789") == 0xE3069283 (iSCSI test vector).
  Bytes v = to_bytes("123456789");
  EXPECT_EQ(crc32c(v), 0xE3069283u);
  EXPECT_EQ(crc32c(BytesView{}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  uint32_t whole = crc32c(data);
  uint32_t part = crc32c(data.data(), 10);
  part = crc32c(data.data() + 10, data.size() - 10, part);
  EXPECT_EQ(part, whole);
}

TEST(Crc32, DetectsBitFlip) {
  Bytes data(1024, 0x5a);
  uint32_t before = crc32c(data);
  data[512] ^= 1;
  EXPECT_NE(crc32c(data), before);
}

// Pins the dispatched implementation (SSE4.2 crc32 instruction where the
// host has it) against the portable slice-by-4 reference, across lengths
// that exercise the 8/4/1-byte tail handling and nonzero seeds.
TEST(Crc32, HardwareMatchesReference) {
  Rng rng(42);
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 65537u}) {
    Bytes data(len);
    rng.fill(data.data(), len);
    EXPECT_EQ(crc32c(data), crc32c_reference(data.data(), data.size())) << len;
    uint32_t seed = static_cast<uint32_t>(rng.next_u64());
    EXPECT_EQ(crc32c(data.data(), data.size(), seed),
              crc32c_reference(data.data(), data.size(), seed))
        << len;
  }
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, FillCoversBuffer) {
  Rng r(11);
  Bytes buf(37, 0);
  r.fill(buf.data(), buf.size());
  std::set<uint8_t> distinct(buf.begin(), buf.end());
  EXPECT_GT(distinct.size(), 4u);  // astronomically unlikely to fail
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(static_cast<double>(h.value_at(0.5)), 50, 3);
  EXPECT_NEAR(static_cast<double>(h.value_at(0.99)), 99, 3);
}

TEST(Histogram, LargeValuesWithinRelativeError) {
  Histogram h;
  int64_t v = 123456789;
  h.record(v);
  EXPECT_EQ(h.count(), 1u);
  int64_t got = h.value_at(0.5);
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(v), v * 0.02);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.value_at(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Logging, SinkCapturesStructuredLine) {
  LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  std::vector<std::pair<LogLevel, std::string>> lines;
  set_log_sink([&lines](LogLevel l, const std::string& s) { lines.emplace_back(l, s); });
  set_log_node(7);
  RSP_WARN << "commit stalled" << RSP_KV("slot", 42) << RSP_KV("ballot", "3.1");
  set_log_node(kNoLogNode);
  set_log_sink(nullptr);
  set_log_level(saved);

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].first, LogLevel::kWarn);
  const std::string& s = lines[0].second;
  EXPECT_NE(s.find("commit stalled"), std::string::npos) << s;
  EXPECT_NE(s.find(" slot=42"), std::string::npos) << s;       // RSP_KV suffix form
  EXPECT_NE(s.find(" ballot=3.1"), std::string::npos) << s;
  EXPECT_NE(s.find("node=7"), std::string::npos) << s;         // per-thread node tag
  EXPECT_NE(s.find(" t="), std::string::npos) << s;            // monotonic timestamp
  EXPECT_NE(s.find("util_test.cpp"), std::string::npos) << s;  // source location
}

TEST(Logging, LevelFiltersBelowThreshold) {
  LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  int captured = 0;
  set_log_sink([&captured](LogLevel, const std::string&) { captured++; });
  RSP_WARN << "should be filtered";
  RSP_ERROR << "should pass";
  set_log_sink(nullptr);
  set_log_level(saved);
  EXPECT_EQ(captured, 1);
}

TEST(EventLoop, RunsPostedTasks) {
  EventLoop loop;
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) loop.post([&n] { n++; });
  loop.drain();
  EXPECT_EQ(n.load(), 100);
}

TEST(EventLoop, TasksRunInOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) loop.post([&order, i] { order.push_back(i); });
  loop.drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, TimersFire) {
  EventLoop loop;
  std::promise<void> fired;
  auto t0 = std::chrono::steady_clock::now();
  loop.schedule(5000, [&fired] { fired.set_value(); });
  fired.get_future().wait();
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_GE(elapsed, 4000);
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  auto id = loop.schedule(20000, [&fired] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  loop.drain();
  EXPECT_FALSE(fired.load());
}

TEST(EventLoop, PostFromManyThreads) {
  EventLoop loop;
  std::atomic<int> n{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&loop, &n] {
      for (int i = 0; i < 500; ++i) loop.post([&n] { n++; });
    });
  }
  for (auto& t : threads) t.join();
  loop.drain();
  EXPECT_EQ(n.load(), 4000);
}

TEST(SlabMap, InsertFindErase) {
  SlabMap<int> m;
  EXPECT_TRUE(m.empty());
  m.emplace(7, 70);
  m.emplace(8, 80);
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(m.find(9), nullptr);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  ASSERT_NE(m.find(8), nullptr);
  EXPECT_EQ(*m.find(8), 80);
}

TEST(SlabMap, ChurnRecyclesSlotsAndStaysConsistent) {
  // Interleaved insert/erase across many growth cycles, checked against a
  // reference map. Sequential-ish keys stress the fmix64 pre-hash; erases
  // exercise backward-shift deletion inside long probe clusters.
  SlabMap<uint64_t> m;
  std::map<uint64_t, uint64_t> ref;
  Rng rng(42);
  for (int round = 0; round < 20000; ++round) {
    uint64_t key = rng.next_below(4096);
    if (rng.chance(0.55)) {
      if (ref.count(key) == 0) {
        m.emplace(key, key * 3);
        ref[key] = key * 3;
      }
    } else {
      EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
    }
    if (round % 1000 == 0) {
      EXPECT_EQ(m.size(), ref.size());
      for (const auto& [k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), v);
      }
    }
  }
  size_t visited = 0;
  m.for_each([&](uint64_t k, uint64_t& v) {
    ++visited;
    EXPECT_EQ(ref.at(k), v);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(SlabMap, EraseResetsValueForSlotReuse) {
  // Erase must default-construct the slot so held resources (here: a vector)
  // are released even before the slot is recycled.
  SlabMap<std::vector<int>> m;
  m.emplace(1, std::vector<int>(1000, 7));
  EXPECT_TRUE(m.erase(1));
  auto& v = m.emplace(2, std::vector<int>{1});  // recycles slot 0
  EXPECT_EQ(v.size(), 1u);
}

TEST(TimingWheel, FiresAtDeadlineGranularity) {
  TimingWheel w(/*tick_us=*/100);
  w.add(1, 0, 250);
  w.add(2, 0, 900);
  std::vector<TimingWheel::Entry> due;
  w.advance(200, due);
  EXPECT_TRUE(due.empty());
  w.advance(250, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 1u);
  due.clear();
  w.advance(1000, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 2u);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, FarDeadlineSurvivesManyRevolutions) {
  // An entry parked far beyond one wheel revolution must neither fire early
  // nor be lost; the cheap-skip bound must not hide it either.
  TimingWheel w(10, /*buckets=*/8);  // revolution = 80us
  w.add(5, 1, 1000);
  std::vector<TimingWheel::Entry> due;
  for (int64_t t = 0; t < 1000; t += 7) {
    w.advance(t, due);
    EXPECT_TRUE(due.empty()) << "fired early at t=" << t;
  }
  w.advance(1005, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 5u);
  EXPECT_EQ(due[0].gen, 1u);
}

TEST(TimingWheel, LargeTimeJumpCollectsEverything) {
  TimingWheel w(10, 8);
  for (uint64_t i = 0; i < 100; ++i) w.add(i, 0, static_cast<int64_t>(10 * i));
  std::vector<TimingWheel::Entry> due;
  w.advance(10000, due);  // jump many revolutions at once
  EXPECT_EQ(due.size(), 100u);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, StaleGenerationEntriesStillDrain) {
  // Lazy cancellation: the wheel happily returns superseded (id, gen)
  // entries; the owner filters them. What matters is they drain and size()
  // reflects it.
  TimingWheel w(10);
  w.add(1, 1, 50);
  w.add(1, 2, 120);  // supersedes gen 1 from the owner's point of view
  EXPECT_EQ(w.size(), 2u);
  std::vector<TimingWheel::Entry> due;
  w.advance(200, due);
  EXPECT_EQ(due.size(), 2u);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, CheapSkipAfterAdvanceStillSeesNewEarlyEntry) {
  // Regression guard: after an advance leaves a far-out entry, adding a
  // nearer one must lower the internal next-deadline bound.
  TimingWheel w(10);
  w.add(1, 0, 10000);
  std::vector<TimingWheel::Entry> due;
  w.advance(100, due);
  EXPECT_TRUE(due.empty());
  w.add(2, 0, 150);
  w.advance(160, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 2u);
}

}  // namespace
}  // namespace rspaxos
