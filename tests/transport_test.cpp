// Real-transport tests: the in-process LocalTransport (threads + queues) and
// the epoll TCP transport (sockets, framing, CRC rejection, non-blocking
// sends, reconnect, per-peer ordering under stress), both honouring the
// NodeContext contract the protocol depends on.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "net/frame.h"
#include "net/local_transport.h"
#include "net/tcp_transport.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace rspaxos::net {
namespace {

// Thread-safe message collector.
struct Collector final : MessageHandler {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, Bytes>> received;

  void on_message(NodeId from, MsgType type, BytesView payload) override {
    (void)type;
    // Notify under the lock: the waiter may destroy this collector as soon
    // as wait_for returns, which must not overlap the broadcast.
    std::lock_guard<std::mutex> lk(mu);
    received.emplace_back(from, Bytes(payload.begin(), payload.end()));
    cv.notify_all();
  }

  bool wait_for(size_t n, int ms = 2000) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::milliseconds(ms),
                       [&] { return received.size() >= n; });
  }
};

// Echo handler: replies kTestPong with the same payload.
struct Echo final : MessageHandler {
  NodeContext* ctx;
  explicit Echo(NodeContext* c) : ctx(c) {}
  void on_message(NodeId from, MsgType type, BytesView payload) override {
    if (type == MsgType::kTestPing) {
      ctx->send(from, MsgType::kTestPong, Bytes(payload.begin(), payload.end()));
    }
  }
};

TEST(LocalTransport, DeliversBetweenThreads) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  t.node(1)->send(2, MsgType::kTestPing, to_bytes("hello"));
  ASSERT_TRUE(rx.wait_for(1));
  EXPECT_EQ(rx.received[0].first, 1u);
  EXPECT_EQ(to_string(rx.received[0].second), "hello");
}

TEST(LocalTransport, PingPong) {
  LocalTransport t;
  Echo echo(t.node(2));
  t.node(2)->set_handler(&echo);
  Collector rx;
  t.node(1)->set_handler(&rx);
  for (int i = 0; i < 50; ++i) {
    t.node(1)->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(rx.wait_for(50));
}

TEST(LocalTransport, OrderPreservedPerSender) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  for (int i = 0; i < 200; ++i) {
    t.node(1)->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(rx.wait_for(200));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rx.received[static_cast<size_t>(i)].second[0], static_cast<uint8_t>(i));
  }
}

TEST(LocalTransport, DisconnectedNodeUnreachable) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  t.disconnect(2);
  t.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  EXPECT_FALSE(rx.wait_for(1, 100));
  t.reconnect(2);
  t.node(1)->send(2, MsgType::kTestPing, Bytes{2});
  EXPECT_TRUE(rx.wait_for(1));
}

TEST(LocalTransport, ChaosDropsSomeMessages) {
  LocalTransport t;
  t.set_chaos(0, 0, 0.5);
  Collector rx;
  t.node(2)->set_handler(&rx);
  for (int i = 0; i < 400; ++i) t.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  t.node(1)->loop().drain();
  t.node(2)->loop().drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  size_t n;
  {
    std::lock_guard<std::mutex> lk(rx.mu);
    n = rx.received.size();
  }
  EXPECT_GT(n, 100u);
  EXPECT_LT(n, 300u);
}

TEST(LocalTransport, TimersFireOnLoopThread) {
  LocalTransport t;
  std::atomic<bool> fired{false};
  t.node(1)->set_timer(2000, [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(fired.load());
}

TEST(LocalTransport, BytesSentAccounting) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  t.node(1)->send(2, MsgType::kTestPing, Bytes(77, 0));
  ASSERT_TRUE(rx.wait_for(1));
  EXPECT_EQ(t.node(1)->bytes_sent(), 77u);
}

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ports = TcpTransport::free_ports(2);
    ASSERT_EQ(ports.size(), 2u);
    std::map<NodeId, PeerAddr> addrs{
        {1, PeerAddr{"127.0.0.1", ports[0]}},
        {2, PeerAddr{"127.0.0.1", ports[1]}},
    };
    transport_ = std::make_unique<TcpTransport>(addrs);
    auto n1 = transport_->start_node(1);
    auto n2 = transport_->start_node(2);
    ASSERT_TRUE(n1.is_ok()) << n1.status().to_string();
    ASSERT_TRUE(n2.is_ok()) << n2.status().to_string();
    node1_ = n1.value();
    node2_ = n2.value();
  }

  std::unique_ptr<TcpTransport> transport_;
  TcpNode* node1_ = nullptr;
  TcpNode* node2_ = nullptr;
};

TEST_F(TcpTest, RoundTripOverSockets) {
  Collector rx;
  node2_->set_handler(&rx);
  node1_->send(2, MsgType::kTestPing, to_bytes("over-tcp"));
  ASSERT_TRUE(rx.wait_for(1));
  EXPECT_EQ(rx.received[0].first, 1u);
  EXPECT_EQ(to_string(rx.received[0].second), "over-tcp");
}

TEST_F(TcpTest, BidirectionalEcho) {
  Echo echo(node2_);
  node2_->set_handler(&echo);
  Collector rx;
  node1_->set_handler(&rx);
  for (int i = 0; i < 20; ++i) {
    node1_->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(rx.wait_for(20));
}

TEST_F(TcpTest, LargePayload) {
  Collector rx;
  node2_->set_handler(&rx);
  Bytes big(2 * 1024 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i * 31);
  node1_->send(2, MsgType::kTestPing, big);
  ASSERT_TRUE(rx.wait_for(1, 10000));
  EXPECT_EQ(rx.received[0].second, big);
}

TEST_F(TcpTest, ManyMessagesKeepOrder) {
  Collector rx;
  node2_->set_handler(&rx);
  for (int i = 0; i < 500; ++i) {
    Bytes payload{static_cast<uint8_t>(i & 0xff), static_cast<uint8_t>(i >> 8)};
    node1_->send(2, MsgType::kTestPing, payload);
  }
  ASSERT_TRUE(rx.wait_for(500, 10000));
  for (int i = 0; i < 500; ++i) {
    int got = rx.received[static_cast<size_t>(i)].second[0] |
              (rx.received[static_cast<size_t>(i)].second[1] << 8);
    EXPECT_EQ(got, i);
  }
}

TEST_F(TcpTest, SendToUnstartedPeerIsDropNotCrash) {
  auto ports = TcpTransport::free_ports(1);
  std::map<NodeId, PeerAddr> addrs{
      {1, PeerAddr{"127.0.0.1", ports[0]}},
      {9, PeerAddr{"127.0.0.1", 1}},  // nothing listens on port 1
  };
  TcpTransport t(addrs);
  auto n = t.start_node(1);
  ASSERT_TRUE(n.is_ok());
  n.value()->send(9, MsgType::kTestPing, Bytes{1});  // must not crash
}

// start_node with retry on the free_ports() TOCTOU race (reported as a
// retryable kUnavailable status).
TcpNode* start_node_retry(std::unique_ptr<TcpTransport>& t, NodeId id) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto n = t->start_node(id);
    if (n.is_ok()) return n.value();
    if (n.status().code() != Code::kUnavailable) {
      ADD_FAILURE() << "start_node: " << n.status().to_string();
      return nullptr;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ADD_FAILURE() << "port stayed busy after 50 retries";
  return nullptr;
}

// send() must be enqueue-only: with nothing listening on the peer's port, a
// burst of sends completes in enqueue time, bounded by the send-stall
// histogram (a blocking transport would pay a connect per send).
TEST(TcpNonBlocking, UnreachablePeerSendIsEnqueueOnly) {
  auto ports = TcpTransport::free_ports(2);
  ASSERT_EQ(ports.size(), 2u);
  constexpr NodeId kSender = 77;  // unique id -> fresh histogram child
  std::map<NodeId, PeerAddr> addrs{
      {kSender, PeerAddr{"127.0.0.1", ports[0]}},
      {78, PeerAddr{"127.0.0.1", ports[1]}},  // reserved but never started
  };
  TcpTransport t(addrs);
  auto n = t.start_node(kSender);
  ASSERT_TRUE(n.is_ok()) << n.status().to_string();

  constexpr int kSends = 1000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSends; ++i) {
    n.value()->send(78, MsgType::kTestPing, Bytes(128, 0x7e));
  }
  auto total_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  // 1000 enqueues must land far under anything a blocking connect() path
  // could achieve; generous bound for sanitizer builds.
  EXPECT_LT(total_ms, 2000.0);
  EXPECT_EQ(n.value()->send_drops(), 0u);  // bounded queue holds all 1000

  auto snap = obs::MetricsRegistry::global()
                  .histogram_family("rsp_net_send_stall_us",
                                    "Time a caller spent inside transport send()",
                                    {"node"})
                  .with({std::to_string(kSender)})
                  .snapshot();
  // Stall timing is sampled 1-in-16 inside send(); 1000 sends yield 63
  // observations (every 16th, starting at the first).
  ASSERT_GE(snap.count(), static_cast<uint64_t>(kSends) / 16);
  EXPECT_LT(snap.value_at(0.99), 5000);  // p99 enqueue stall < 5 ms
}

// Queue overflow toward an unreachable peer drops oldest frames instead of
// blocking or growing without bound.
TEST(TcpNonBlocking, QueueOverflowDropsOldest) {
  auto ports = TcpTransport::free_ports(1);
  ASSERT_EQ(ports.size(), 1u);
  std::map<NodeId, PeerAddr> addrs{
      {80, PeerAddr{"127.0.0.1", ports[0]}},
      {81, PeerAddr{"127.0.0.1", 1}},  // nothing listens
  };
  TcpTransport t(addrs);
  auto n = t.start_node(80);
  ASSERT_TRUE(n.is_ok()) << n.status().to_string();
  const size_t total = TcpNode::kMaxQueueFrames + 500;
  for (size_t i = 0; i < total; ++i) {
    n.value()->send(81, MsgType::kTestPing, Bytes{1});
  }
  EXPECT_GE(n.value()->send_drops(), 400u);
}

// Destroying the transport with megabytes still queued toward an unreachable
// peer must not hang or crash.
TEST(TcpNonBlocking, ShutdownWithQueuedDataIsClean) {
  auto ports = TcpTransport::free_ports(1);
  ASSERT_EQ(ports.size(), 1u);
  std::map<NodeId, PeerAddr> addrs{
      {82, PeerAddr{"127.0.0.1", ports[0]}},
      {83, PeerAddr{"127.0.0.1", 1}},
  };
  auto t = std::make_unique<TcpTransport>(addrs);
  auto n = t->start_node(82);
  ASSERT_TRUE(n.is_ok()) << n.status().to_string();
  for (int i = 0; i < 48; ++i) {
    n.value()->send(83, MsgType::kTestPing, Bytes(1 << 20, 0x42));
  }
  t.reset();  // queued frames dropped, no hang
}

// A CRC-corrupted frame is dropped without killing the connection: the valid
// frame behind it on the same socket still arrives.
TEST_F(TcpTest, CorruptFrameDroppedConnectionSurvives) {
  Collector rx;
  node2_->set_handler(&rx);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(transport_->addr(2).port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);

  auto framed = [](const std::string& s, bool corrupt) {
    Bytes payload = to_bytes(s);
    Bytes out(kFrameHeaderBytes + payload.size());
    uint32_t crc = crc32c(payload) ^ (corrupt ? 0xdeadbeef : 0);
    encode_frame_header(out.data(), static_cast<uint32_t>(payload.size()), crc, 42,
                        /*to=*/2, MsgType::kTestPing);
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
    return out;
  };
  Bytes wire = framed("corrupt-me", true);
  Bytes good = framed("still-alive", false);
  wire.insert(wire.end(), good.begin(), good.end());
  ASSERT_EQ(::write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));

  ASSERT_TRUE(rx.wait_for(1));
  {
    std::lock_guard<std::mutex> lk(rx.mu);
    ASSERT_EQ(rx.received.size(), 1u);
    EXPECT_EQ(rx.received[0].first, 42u);
    EXPECT_EQ(to_string(rx.received[0].second), "still-alive");
  }
  ::close(fd);
}

// A hostile length field (> kMaxFrameBytes) is fatal for that connection:
// valid frames earlier in the same burst still deliver, the server closes
// the socket, and the transport keeps serving other connections. Regression
// test — this path once destroyed the Conn and then kept reading through the
// dangling pointer.
TEST_F(TcpTest, OversizedFrameClosesConnectionTransportSurvives) {
  Collector rx;
  node2_->set_handler(&rx);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(transport_->addr(2).port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);

  Bytes payload = to_bytes("before-bomb");
  Bytes wire(kFrameHeaderBytes + payload.size() + kFrameHeaderBytes);
  encode_frame_header(wire.data(), static_cast<uint32_t>(payload.size()),
                      crc32c(payload), 42, /*to=*/2, MsgType::kTestPing);
  std::memcpy(wire.data() + kFrameHeaderBytes, payload.data(), payload.size());
  // Header claiming a 1 GiB payload, far over kMaxFrameBytes.
  encode_frame_header(wire.data() + kFrameHeaderBytes + payload.size(), 1u << 30,
                      0, 42, /*to=*/2, MsgType::kTestPing);
  ASSERT_EQ(::write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));

  ASSERT_TRUE(rx.wait_for(1));
  {
    std::lock_guard<std::mutex> lk(rx.mu);
    ASSERT_EQ(rx.received.size(), 1u);
    EXPECT_EQ(to_string(rx.received[0].second), "before-bomb");
  }

  // The server must close the hostile connection: wait for EOF.
  pollfd pfd{fd, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0);
  uint8_t b;
  EXPECT_EQ(::read(fd, &b, 1), 0);
  ::close(fd);

  // The node itself survives and accepts fresh connections.
  node1_->send(2, MsgType::kTestPing, to_bytes("still-works"));
  ASSERT_TRUE(rx.wait_for(2));
  {
    std::lock_guard<std::mutex> lk(rx.mu);
    EXPECT_EQ(to_string(rx.received[1].second), "still-works");
  }
}

// ---------------------------------------------------------------------------
// Stress: 4 nodes, concurrent senders per node, frame sizes 1 B - 1 MiB,
// one peer killed mid-stream (likely mid-frame: 1 MiB frames in flight) and
// restarted on the same port. Asserts per-(sender,receiver) sequence numbers
// never go backwards and shutdown is clean with data still queued.

// Orders kTestPing frames (u32 seq | u32 stream prefix) per sender stream —
// each sender thread is its own stream, so concurrent send() calls from two
// threads of one node don't look like reorders. Counts 1-byte kTestPong
// "noise" frames without ordering.
struct SeqCollector final : MessageHandler {
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::pair<NodeId, uint32_t>, uint32_t> last_seq;  // (from, stream)
  std::map<NodeId, uint64_t> frames_from;
  uint64_t reorders = 0;
  uint64_t noise = 0;

  void on_message(NodeId from, MsgType type, BytesView payload) override {
    std::lock_guard<std::mutex> lk(mu);
    if (type == MsgType::kTestPing && payload.size() >= 8) {
      uint32_t seq, stream;
      std::memcpy(&seq, payload.data(), 4);
      std::memcpy(&stream, payload.data() + 4, 4);
      auto key = std::make_pair(from, stream);
      auto it = last_seq.find(key);
      if (it != last_seq.end() && seq <= it->second) ++reorders;
      last_seq[key] = seq;
      ++frames_from[from];
    } else {
      ++noise;
    }
    cv.notify_all();
  }

  bool wait_frames_from(NodeId from, uint64_t n, int ms) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::milliseconds(ms),
                       [&] { return frames_from[from] >= n; });
  }
};

// TSan instruments every access and serializes far more than native builds;
// the stress senders must not out-produce the instrumented io threads.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsanBuild = true;
#else
constexpr bool kTsanBuild = false;
#endif
#else
constexpr bool kTsanBuild = false;
#endif

TEST(TcpStress, ConcurrentSendersKillReconnectNoReorder) {
  constexpr int kNodes = 4;
  auto ports = TcpTransport::free_ports(kNodes);
  ASSERT_EQ(ports.size(), static_cast<size_t>(kNodes));
  std::map<NodeId, PeerAddr> addrs;
  for (int i = 0; i < kNodes; ++i) {
    addrs[static_cast<NodeId>(i + 1)] = PeerAddr{"127.0.0.1", ports[static_cast<size_t>(i)]};
  }

  // Nodes 1-3 on one transport; node 4 on its own so it can be killed and
  // restarted while the rest keep sending.
  auto main_t = std::make_unique<TcpTransport>(addrs);
  auto victim_t = std::make_unique<TcpTransport>(addrs);
  std::array<TcpNode*, 4> nodes{};
  std::array<SeqCollector, 4> rx;  // rx[i] for node i+1 (first incarnation)
  for (NodeId id = 1; id <= 3; ++id) {
    auto n = main_t->start_node(id);
    ASSERT_TRUE(n.is_ok()) << n.status().to_string();
    nodes[id - 1] = n.value();
    nodes[id - 1]->set_handler(&rx[id - 1]);
  }
  nodes[3] = start_node_retry(victim_t, 4);
  ASSERT_NE(nodes[3], nullptr);
  nodes[3]->set_handler(&rx[3]);

  std::atomic<bool> stop{false};

  // Each sender thread is an independent ordered stream: per-thread sequence
  // counters plus a unique stream id in bytes 4-8 of every kTestPing payload.
  auto sender_fn = [&](TcpNode* self_node, NodeId self, uint32_t stream) {
    Rng rng(stream * 7919 + 1);
    std::array<uint32_t, kNodes + 1> next_seq{};
    while (!stop.load()) {
      for (NodeId to = 1; to <= kNodes; ++to) {
        if (to == self) continue;
        uint64_t pick = rng.next_u64() % 100;
        if (pick < 10) {
          // 1-byte noise frame (covers the minimum frame size).
          self_node->send(to, MsgType::kTestPong, Bytes{0x01});
          continue;
        }
        size_t len;
        if (pick < 90) {
          len = 8 + rng.next_u64() % 4096;  // small frames dominate
        } else if (pick < 99) {
          len = 8 + rng.next_u64() % (64 * 1024);
        } else {
          len = 1 << 20;  // occasional 1 MiB frame -> kill lands mid-frame
        }
        Bytes payload(len);
        uint32_t s = next_seq[to]++;
        std::memcpy(payload.data(), &s, 4);
        std::memcpy(payload.data() + 4, &stream, 4);
        self_node->send(to, MsgType::kTestPing, std::move(payload));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(kTsanBuild ? 3000 : 200));
    }
  };

  // Sender threads only for nodes 1-3; node 4's own senders spawn after the
  // restart, bound to the incarnation that is actually alive.
  std::vector<std::thread> senders;
  // An early ASSERT return must still stop and join the senders (a joinable
  // std::thread destructor terminates the process).
  struct SenderJoiner {
    std::atomic<bool>& stop;
    std::vector<std::thread>& ts;
    ~SenderJoiner() {
      stop = true;
      for (auto& t : ts) {
        if (t.joinable()) t.join();
      }
    }
  } sender_joiner{stop, senders};
  for (NodeId id = 1; id <= 3; ++id) {
    for (uint32_t k = 0; k < 2; ++k) {  // two concurrent sender threads per node
      senders.emplace_back(sender_fn, nodes[id - 1], id, id * 100 + k);
    }
  }

  // Let traffic flow, then kill node 4 mid-stream.
  const int wait_ms = kTsanBuild ? 60000 : 10000;
  ASSERT_TRUE(rx[0].wait_frames_from(2, 50, wait_ms));
  ASSERT_TRUE(rx[3].wait_frames_from(1, 50, wait_ms));
  victim_t.reset();  // node 4 gone; peers see RST, back off, requeue

  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Restart node 4 on the same port; senders reconnect automatically.
  auto victim2_t = std::make_unique<TcpTransport>(addrs);
  SeqCollector rx4b;
  TcpNode* node4b = start_node_retry(victim2_t, 4);
  ASSERT_NE(node4b, nullptr);
  node4b->set_handler(&rx4b);
  for (uint32_t k = 0; k < 2; ++k) {
    senders.emplace_back(sender_fn, node4b, 4, 400 + k);
  }

  // Fresh frames from every healthy sender must reach the restarted node
  // (reconnect backoff caps at 500 ms).
  for (NodeId from = 1; from <= 3; ++from) {
    EXPECT_TRUE(rx4b.wait_frames_from(from, 20, kTsanBuild ? 90000 : 15000))
        << "no traffic from node " << from << " after restart";
  }

  stop = true;
  for (auto& t : senders) t.join();

  // No frame reordering per (sender, receiver-incarnation) pair anywhere.
  for (int i = 0; i < kNodes; ++i) {
    std::lock_guard<std::mutex> lk(rx[i].mu);
    EXPECT_EQ(rx[i].reorders, 0u) << "reordered frames at node " << i + 1;
  }
  {
    std::lock_guard<std::mutex> lk(rx4b.mu);
    EXPECT_EQ(rx4b.reorders, 0u) << "reordered frames at restarted node 4";
    EXPECT_GT(rx4b.noise + rx4b.frames_from[1], 0u);
  }
  // Cross-node sanity: healthy pairs moved plenty of traffic.
  {
    std::lock_guard<std::mutex> lk(rx[1].mu);
    EXPECT_GT(rx[1].frames_from[1], 50u);
    EXPECT_GT(rx[1].frames_from[3], 50u);
  }
  // Clean shutdown with senders stopped but queues plausibly non-empty.
  main_t.reset();
  victim2_t.reset();
}

}  // namespace
}  // namespace rspaxos::net
