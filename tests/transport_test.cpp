// Real-transport tests: the in-process LocalTransport (threads + queues) and
// the TCP transport (sockets, framing, CRC rejection, reconnect), both
// honouring the NodeContext contract the protocol depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "net/local_transport.h"
#include "net/tcp_transport.h"

namespace rspaxos::net {
namespace {

// Thread-safe message collector.
struct Collector final : MessageHandler {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, Bytes>> received;

  void on_message(NodeId from, MsgType type, BytesView payload) override {
    (void)type;
    {
      std::lock_guard<std::mutex> lk(mu);
      received.emplace_back(from, Bytes(payload.begin(), payload.end()));
    }
    cv.notify_all();
  }

  bool wait_for(size_t n, int ms = 2000) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::milliseconds(ms),
                       [&] { return received.size() >= n; });
  }
};

// Echo handler: replies kTestPong with the same payload.
struct Echo final : MessageHandler {
  NodeContext* ctx;
  explicit Echo(NodeContext* c) : ctx(c) {}
  void on_message(NodeId from, MsgType type, BytesView payload) override {
    if (type == MsgType::kTestPing) {
      ctx->send(from, MsgType::kTestPong, Bytes(payload.begin(), payload.end()));
    }
  }
};

TEST(LocalTransport, DeliversBetweenThreads) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  t.node(1)->send(2, MsgType::kTestPing, to_bytes("hello"));
  ASSERT_TRUE(rx.wait_for(1));
  EXPECT_EQ(rx.received[0].first, 1u);
  EXPECT_EQ(to_string(rx.received[0].second), "hello");
}

TEST(LocalTransport, PingPong) {
  LocalTransport t;
  Echo echo(t.node(2));
  t.node(2)->set_handler(&echo);
  Collector rx;
  t.node(1)->set_handler(&rx);
  for (int i = 0; i < 50; ++i) {
    t.node(1)->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(rx.wait_for(50));
}

TEST(LocalTransport, OrderPreservedPerSender) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  for (int i = 0; i < 200; ++i) {
    t.node(1)->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(rx.wait_for(200));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rx.received[static_cast<size_t>(i)].second[0], static_cast<uint8_t>(i));
  }
}

TEST(LocalTransport, DisconnectedNodeUnreachable) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  t.disconnect(2);
  t.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  EXPECT_FALSE(rx.wait_for(1, 100));
  t.reconnect(2);
  t.node(1)->send(2, MsgType::kTestPing, Bytes{2});
  EXPECT_TRUE(rx.wait_for(1));
}

TEST(LocalTransport, ChaosDropsSomeMessages) {
  LocalTransport t;
  t.set_chaos(0, 0, 0.5);
  Collector rx;
  t.node(2)->set_handler(&rx);
  for (int i = 0; i < 400; ++i) t.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  t.node(1)->loop().drain();
  t.node(2)->loop().drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  size_t n;
  {
    std::lock_guard<std::mutex> lk(rx.mu);
    n = rx.received.size();
  }
  EXPECT_GT(n, 100u);
  EXPECT_LT(n, 300u);
}

TEST(LocalTransport, TimersFireOnLoopThread) {
  LocalTransport t;
  std::atomic<bool> fired{false};
  t.node(1)->set_timer(2000, [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(fired.load());
}

TEST(LocalTransport, BytesSentAccounting) {
  LocalTransport t;
  Collector rx;
  t.node(2)->set_handler(&rx);
  t.node(1)->send(2, MsgType::kTestPing, Bytes(77, 0));
  ASSERT_TRUE(rx.wait_for(1));
  EXPECT_EQ(t.node(1)->bytes_sent(), 77u);
}

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ports = TcpTransport::free_ports(2);
    ASSERT_EQ(ports.size(), 2u);
    std::map<NodeId, PeerAddr> addrs{
        {1, PeerAddr{"127.0.0.1", ports[0]}},
        {2, PeerAddr{"127.0.0.1", ports[1]}},
    };
    transport_ = std::make_unique<TcpTransport>(addrs);
    auto n1 = transport_->start_node(1);
    auto n2 = transport_->start_node(2);
    ASSERT_TRUE(n1.is_ok()) << n1.status().to_string();
    ASSERT_TRUE(n2.is_ok()) << n2.status().to_string();
    node1_ = n1.value();
    node2_ = n2.value();
  }

  std::unique_ptr<TcpTransport> transport_;
  TcpNode* node1_ = nullptr;
  TcpNode* node2_ = nullptr;
};

TEST_F(TcpTest, RoundTripOverSockets) {
  Collector rx;
  node2_->set_handler(&rx);
  node1_->send(2, MsgType::kTestPing, to_bytes("over-tcp"));
  ASSERT_TRUE(rx.wait_for(1));
  EXPECT_EQ(rx.received[0].first, 1u);
  EXPECT_EQ(to_string(rx.received[0].second), "over-tcp");
}

TEST_F(TcpTest, BidirectionalEcho) {
  Echo echo(node2_);
  node2_->set_handler(&echo);
  Collector rx;
  node1_->set_handler(&rx);
  for (int i = 0; i < 20; ++i) {
    node1_->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(rx.wait_for(20));
}

TEST_F(TcpTest, LargePayload) {
  Collector rx;
  node2_->set_handler(&rx);
  Bytes big(2 * 1024 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i * 31);
  node1_->send(2, MsgType::kTestPing, big);
  ASSERT_TRUE(rx.wait_for(1, 10000));
  EXPECT_EQ(rx.received[0].second, big);
}

TEST_F(TcpTest, ManyMessagesKeepOrder) {
  Collector rx;
  node2_->set_handler(&rx);
  for (int i = 0; i < 500; ++i) {
    Bytes payload{static_cast<uint8_t>(i & 0xff), static_cast<uint8_t>(i >> 8)};
    node1_->send(2, MsgType::kTestPing, payload);
  }
  ASSERT_TRUE(rx.wait_for(500, 10000));
  for (int i = 0; i < 500; ++i) {
    int got = rx.received[static_cast<size_t>(i)].second[0] |
              (rx.received[static_cast<size_t>(i)].second[1] << 8);
    EXPECT_EQ(got, i);
  }
}

TEST_F(TcpTest, SendToUnstartedPeerIsDropNotCrash) {
  auto ports = TcpTransport::free_ports(1);
  std::map<NodeId, PeerAddr> addrs{
      {1, PeerAddr{"127.0.0.1", ports[0]}},
      {9, PeerAddr{"127.0.0.1", 1}},  // nothing listens on port 1
  };
  TcpTransport t(addrs);
  auto n = t.start_node(1);
  ASSERT_TRUE(n.is_ok());
  n.value()->send(9, MsgType::kTestPing, Bytes{1});  // must not crash
}

}  // namespace
}  // namespace rspaxos::net
