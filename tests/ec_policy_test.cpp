// Property tests for the pluggable erasure-code policy layer: every policy's
// decode is exercised over ALL subsets of shares (decodable() must predict
// exactly which ones reconstruct, and reconstruction must be byte-identical
// to the original value), every single-share failure is repaired via
// plan_repair/run_repair against the encode_share ground truth, and the
// locality codes must beat the RS "fetch any X" byte count. The whole binary
// is re-run with RSPAXOS_FORCE_SCALAR_GF=1 (ec_policy_test_scalar) so the
// scalar reference kernels stay byte-identical to the SIMD tiers.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "ec/code_id.h"
#include "ec/policy.h"
#include "ec/rs_code.h"
#include "util/rng.h"

namespace rspaxos {
namespace {

using ec::CodeId;
using ec::EcPolicy;
using ec::PolicyCache;
using ec::RepairPlan;

struct Geometry {
  CodeId code;
  int x;
  int n;
};

// Small n keeps the 2^n all-subsets sweep cheap; the set covers MDS (rs, hh)
// and non-MDS (lrc) plus geometries where the locality shortcuts kick in.
const Geometry kGeometries[] = {
    {CodeId::kRs, 2, 4},  {CodeId::kRs, 3, 5},   {CodeId::kRs, 4, 10},
    {CodeId::kLrc, 4, 8}, {CodeId::kLrc, 4, 10}, {CodeId::kLrc, 6, 12},
    {CodeId::kHh, 3, 5},  {CodeId::kHh, 4, 6},   {CodeId::kHh, 4, 10},
};

Bytes random_value(Rng* rng, size_t len) {
  Bytes v(len);
  for (auto& b : v) b = static_cast<uint8_t>(rng->next_below(256));
  return v;
}

// Slices the sub-shares a plan's masks name out of the full shares — the
// same bytes a peer would put on the wire answering a sub-masked fetch.
std::map<int, Bytes> fetch_for_plan(const EcPolicy& p, const RepairPlan& plan,
                                    const std::vector<Bytes>& shares, size_t value_len) {
  const size_t sub = p.sub_size(value_len);
  std::map<int, Bytes> out;
  for (const auto& f : plan.fetches) {
    Bytes b;
    const Bytes& share = shares[static_cast<size_t>(f.share_idx)];
    for (int j = 0; j < p.sub_shares(); ++j) {
      if ((f.sub_mask & (1u << j)) == 0) continue;
      b.insert(b.end(), share.begin() + static_cast<long>(static_cast<size_t>(j) * sub),
               share.begin() + static_cast<long>(static_cast<size_t>(j + 1) * sub));
    }
    out[f.share_idx] = std::move(b);
  }
  return out;
}

TEST(EcPolicy, AllSubsetsDecodeIffDecodable) {
  Rng rng(71);
  for (const Geometry& g : kGeometries) {
    const EcPolicy& p = PolicyCache::get(g.code, g.x, g.n);
    ASSERT_EQ(p.x(), g.x);
    ASSERT_EQ(p.n(), g.n);
    // Odd length so the tail sub-block is partial (padding paths covered).
    const Bytes value = random_value(&rng, 1021);
    const std::vector<Bytes> shares = p.encode(value);
    for (uint32_t mask = 0; mask < (1u << g.n); ++mask) {
      std::vector<int> have;
      std::map<int, Bytes> input;
      for (int i = 0; i < g.n; ++i) {
        if (mask & (1u << i)) {
          have.push_back(i);
          input[i] = shares[static_cast<size_t>(i)];
        }
      }
      const bool expect = p.decodable(have);
      auto dec = p.decode(input, value.size());
      ASSERT_EQ(dec.is_ok(), expect)
          << ec::to_string(g.code) << "(" << g.x << "," << g.n << ") mask=" << mask;
      if (expect) {
        ASSERT_EQ(dec.value(), value)
            << ec::to_string(g.code) << "(" << g.x << "," << g.n << ") mask=" << mask;
      }
    }
  }
}

TEST(EcPolicy, AnySubsetDecodableMatchesBruteForceAndMdsClaims) {
  for (const Geometry& g : kGeometries) {
    const EcPolicy& p = PolicyCache::get(g.code, g.x, g.n);
    EXPECT_EQ(p.any_subset_decodable(),
              ec::brute_force_any_subset_decodable(p.generator(), p.n(), p.sub_shares()))
        << ec::to_string(g.code) << "(" << g.x << "," << g.n << ")";
    if (g.code == CodeId::kRs || g.code == CodeId::kHh) {
      // Both are MDS: any x shares must decode.
      EXPECT_EQ(p.any_subset_decodable(), g.x);
    } else {
      // LRC trades MDS-ness for locality.
      EXPECT_GT(p.any_subset_decodable(), g.x);
    }
  }
}

TEST(EcPolicy, EncodeVariantsAgree) {
  Rng rng(72);
  for (const Geometry& g : kGeometries) {
    const EcPolicy& p = PolicyCache::get(g.code, g.x, g.n);
    for (size_t len : {size_t{0}, size_t{1}, size_t{257}, size_t{40000}}) {
      const Bytes value = random_value(&rng, len);
      const std::vector<Bytes> shares = p.encode(value);
      ASSERT_EQ(shares.size(), static_cast<size_t>(g.n));
      const size_t ss = p.share_size(len);
      std::vector<Bytes> into(static_cast<size_t>(g.n), Bytes(ss, 0xAA));
      std::vector<uint8_t*> dsts;
      for (auto& b : into) dsts.push_back(b.data());
      p.encode_into(value, dsts.data());
      for (int i = 0; i < g.n; ++i) {
        ASSERT_EQ(shares[static_cast<size_t>(i)].size(), ss);
        EXPECT_EQ(into[static_cast<size_t>(i)], shares[static_cast<size_t>(i)]) << "i=" << i;
        EXPECT_EQ(p.encode_share(value, i), shares[static_cast<size_t>(i)]) << "i=" << i;
      }
    }
  }
}

TEST(EcPolicy, RsPolicyByteIdenticalToRsCode) {
  Rng rng(73);
  for (auto [x, n] : {std::pair{2, 4}, std::pair{3, 5}, std::pair{4, 10}}) {
    const EcPolicy& p = PolicyCache::get(CodeId::kRs, x, n);
    const ec::RsCode& rs = ec::RsCodeCache::get(x, n);
    const Bytes value = random_value(&rng, 3333);
    EXPECT_EQ(p.share_size(value.size()), rs.share_size(value.size()));
    EXPECT_EQ(p.encode(value), rs.encode(value));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(p.encode_share(value, i), rs.encode_share(value, i));
    }
  }
}

TEST(EcPolicy, RepairsEverySingleFailure) {
  Rng rng(74);
  for (const Geometry& g : kGeometries) {
    const EcPolicy& p = PolicyCache::get(g.code, g.x, g.n);
    const Bytes value = random_value(&rng, 8191);
    const std::vector<Bytes> shares = p.encode(value);
    std::vector<int> all(static_cast<size_t>(g.n));
    for (int i = 0; i < g.n; ++i) all[static_cast<size_t>(i)] = i;
    for (int target = 0; target < g.n; ++target) {
      std::vector<int> live;
      for (int i = 0; i < g.n; ++i) {
        if (i != target) live.push_back(i);
      }
      RepairPlan plan = p.plan_repair(target, live);
      ASSERT_TRUE(plan.feasible())
          << ec::to_string(g.code) << "(" << g.x << "," << g.n << ") target=" << target;
      // Never worse than the MDS fallback of fetching x full shares.
      EXPECT_LE(plan.sub_count(), g.x * p.sub_shares());
      auto rebuilt =
          p.run_repair(plan, fetch_for_plan(p, plan, shares, value.size()), value.size());
      ASSERT_TRUE(rebuilt.is_ok()) << rebuilt.status().to_string();
      EXPECT_EQ(rebuilt.value(), shares[static_cast<size_t>(target)])
          << ec::to_string(g.code) << " target=" << target;
    }
  }
}

TEST(EcPolicy, LocalityCodesBeatRsOnSystematicRepair) {
  // The acceptance bar for this subsystem: on a single systematic failure,
  // LRC reads only its local group and Hitchhiker reads ~half the stripe,
  // both strictly fewer bytes than RS's x full shares at the same geometry.
  const size_t value_len = 65536;
  for (CodeId code : {CodeId::kLrc, CodeId::kHh}) {
    const EcPolicy& p = PolicyCache::get(code, 4, 10);
    const EcPolicy& rs = PolicyCache::get(CodeId::kRs, 4, 10);
    std::vector<int> live;
    for (int i = 1; i < 10; ++i) live.push_back(i);
    RepairPlan plan = p.plan_repair(0, live);
    RepairPlan rs_plan = rs.plan_repair(0, live);
    ASSERT_TRUE(plan.feasible());
    ASSERT_TRUE(rs_plan.feasible());
    EXPECT_LT(p.plan_bytes(plan, value_len), rs.plan_bytes(rs_plan, value_len))
        << ec::to_string(code);
  }
  // The specific shapes: LRC(4,10) groups 2 data shares per local parity;
  // HH(4,10) fetches x+1 half-shares.
  EXPECT_EQ(PolicyCache::get(CodeId::kLrc, 4, 10).plan_repair(0, {1, 2, 3, 4, 5, 6, 7, 8, 9})
                .sub_count(),
            2);
  EXPECT_EQ(PolicyCache::get(CodeId::kHh, 4, 10).plan_repair(0, {1, 2, 3, 4, 5, 6, 7, 8, 9})
                .sub_count(),
            5);
}

TEST(EcPolicy, PlanRespectsPeerCosts) {
  const EcPolicy& p = PolicyCache::get(CodeId::kRs, 3, 6);
  std::vector<int> live = {0, 1, 2, 3, 4, 5};
  // Share 1's holder is across a WAN link; everyone else is cheap.
  std::vector<double> cost = {1.0, 100.0, 1.0, 1.0, 1.0, 1.0};
  RepairPlan plan = p.plan_repair(RepairPlan::kWholeValue, live, cost);
  ASSERT_TRUE(plan.feasible());
  EXPECT_EQ(plan.fetches.size(), 3u);
  for (const auto& f : plan.fetches) EXPECT_NE(f.share_idx, 1);

  // With uniform costs the plan must prefer systematic shares (straight
  // copies on decode) — the map-ordered greedy guarantees it.
  RepairPlan uniform = p.plan_repair(RepairPlan::kWholeValue, live);
  ASSERT_TRUE(uniform.feasible());
  for (const auto& f : uniform.fetches) EXPECT_LT(f.share_idx, 3);
}

TEST(EcPolicy, RepairWithDeadLocalGroupFallsBack) {
  // Kill a whole LRC local group except the target: the local plan is
  // infeasible, the policy must still repair via globals.
  Rng rng(75);
  const EcPolicy& p = PolicyCache::get(CodeId::kLrc, 4, 10);
  const Bytes value = random_value(&rng, 2000);
  const std::vector<Bytes> shares = p.encode(value);
  RepairPlan local = p.plan_repair(0, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  // Drop share 0's group partners (its partner data share and local parity).
  std::vector<int> live;
  for (const auto& f : local.fetches) live.push_back(f.share_idx);
  std::vector<int> degraded;
  for (int i = 1; i < 10; ++i) {
    if (std::find(live.begin(), live.end(), i) == live.end()) degraded.push_back(i);
  }
  RepairPlan plan = p.plan_repair(0, degraded);
  ASSERT_TRUE(plan.feasible());
  EXPECT_GT(plan.sub_count(), local.sub_count());
  auto rebuilt = p.run_repair(plan, fetch_for_plan(p, plan, shares, value.size()), value.size());
  ASSERT_TRUE(rebuilt.is_ok()) << rebuilt.status().to_string();
  EXPECT_EQ(rebuilt.value(), shares[0]);
}

TEST(EcPolicy, WholeValueRepairMatchesDecode) {
  Rng rng(76);
  for (const Geometry& g : kGeometries) {
    const EcPolicy& p = PolicyCache::get(g.code, g.x, g.n);
    const Bytes value = random_value(&rng, 12345);
    const std::vector<Bytes> shares = p.encode(value);
    std::vector<int> all;
    for (int i = 0; i < g.n; ++i) all.push_back(i);
    RepairPlan plan = p.plan_repair(RepairPlan::kWholeValue, all);
    ASSERT_TRUE(plan.feasible());
    auto got = p.run_repair(plan, fetch_for_plan(p, plan, shares, value.size()), value.size());
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    EXPECT_EQ(got.value(), value) << ec::to_string(g.code);
  }
}

TEST(EcPolicy, GetCheckedRejectsCorruptWireParams) {
  // Wire-derived (code, x, n) triples go through get_checked, which must
  // return a Status — never assert, never narrow u64 -> int silently.
  EXPECT_FALSE(PolicyCache::get_checked(3, 2, 4).is_ok());     // unknown code id
  EXPECT_FALSE(PolicyCache::get_checked(0, 0, 4).is_ok());     // x < 1
  EXPECT_FALSE(PolicyCache::get_checked(0, 5, 4).is_ok());     // x > n
  EXPECT_FALSE(PolicyCache::get_checked(0, 2, 300).is_ok());   // n > 255
  EXPECT_FALSE(PolicyCache::get_checked(0, (1ull << 40) + 2, (1ull << 40) + 4).is_ok());
  EXPECT_FALSE(PolicyCache::get_checked(1, 4, 5).is_ok());     // lrc needs n-x >= 2
  EXPECT_FALSE(PolicyCache::get_checked(2, 14, 15).is_ok());   // hh needs n-x >= 2
  EXPECT_FALSE(PolicyCache::get_checked(1, 10, 32).is_ok());   // lrc caps n at 16
  auto ok = PolicyCache::get_checked(1, 4, 10);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value()->id(), CodeId::kLrc);
  // rs accepts the full 1 <= x <= n <= 255 range get() always allowed.
  EXPECT_TRUE(PolicyCache::get_checked(0, 200, 255).is_ok());
}

TEST(EcPolicy, CodeIdRoundTrip) {
  for (CodeId c : {CodeId::kRs, CodeId::kLrc, CodeId::kHh}) {
    auto parsed = ec::parse_code_id(ec::to_string(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(ec::parse_code_id("xor").has_value());
}

// Regression for the cache thread-safety satellite: EcWorkerPool workers and
// reactor threads hit RsCodeCache::get / PolicyCache::get concurrently while
// encoding. Run under TSan via the tsan preset.
TEST(EcPolicy, CachesAreThreadSafe) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const Geometry& g = kGeometries[rng.next_below(std::size(kGeometries))];
        const EcPolicy& p = PolicyCache::get(g.code, g.x, g.n);
        const ec::RsCode& rs = ec::RsCodeCache::get(g.x, g.n);
        Bytes value = random_value(&rng, 64 + rng.next_below(256));
        auto shares = p.encode(value);
        std::map<int, Bytes> input;
        for (int s = 0; s < g.n && static_cast<int>(input.size()) < p.any_subset_decodable();
             ++s) {
          input[s] = shares[static_cast<size_t>(s)];
        }
        auto dec = p.decode(input, value.size());
        ASSERT_TRUE(dec.is_ok());
        ASSERT_EQ(dec.value(), value);
        ASSERT_EQ(rs.share_size(value.size()), (value.size() + static_cast<size_t>(g.x) - 1) /
                                                   static_cast<size_t>(g.x));
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace rspaxos
