// Multi-group node host over the simulator: every machine is one NodeHost
// with ONE multiplexed SimWal serving a replica of each Paxos group. These
// tests pin the isolation and sharing contracts the host layer promises:
// per-group truncation/replay over a shared log, one group checkpointing
// while another keeps committing, whole-machine crash/restart recovering
// every group, and the accounting identity between the machine log and its
// per-group views.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

constexpr int kServers = 5;
constexpr int kGroups = 4;

struct MultiGroupFixture {
  sim::SimWorld world;
  SimCluster cluster;
  std::unique_ptr<KvClient> client;

  explicit MultiGroupFixture(SimClusterOptions opts = {}, uint64_t seed = 42)
      : world(seed), cluster(&world, tuned(opts)) {
    cluster.wait_for_leaders();
    KvClient::Options copts;
    copts.request_timeout = 500 * kMillis;
    client = cluster.make_client(0, copts);
  }

  static SimClusterOptions tuned(SimClusterOptions opts) {
    opts.num_groups = kGroups;
    opts.spread_leaders = true;
    opts.replica.heartbeat_interval = 20 * kMillis;
    opts.replica.election_timeout_min = 150 * kMillis;
    opts.replica.election_timeout_max = 300 * kMillis;
    opts.replica.lease_duration = 100 * kMillis;
    opts.replica.max_clock_drift = 10 * kMillis;
    return opts;
  }

  Status put(const std::string& key, Bytes value) {
    std::optional<Status> out;
    client->put(key, std::move(value), [&](Status s) { out = s; });
    run_until([&] { return out.has_value(); });
    return out.value_or(Status::timeout("sim ended"));
  }

  StatusOr<Bytes> get(const std::string& key) {
    std::optional<StatusOr<Bytes>> out;
    client->get(key, [&](StatusOr<Bytes> r) { out = std::move(r); });
    run_until([&] { return out.has_value(); });
    if (!out.has_value()) return Status::timeout("sim ended");
    return std::move(*out);
  }

  template <typename Pred>
  void run_until(Pred done, DurationMicros max = 60 * kSeconds) {
    TimeMicros deadline = world.now() + max;
    while (!done() && world.now() < deadline) world.run_for(5 * kMillis);
  }
};

/// The i-th key that routes to shard `group` under the current hash contract.
std::string key_in_group(int group, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "mg/" + std::to_string(n);
    if (shard_of(key, kGroups) == static_cast<size_t>(group) && found++ == i) return key;
  }
}

Bytes value_for(int i) { return Bytes(256, static_cast<uint8_t>('a' + (i % 26))); }

// One machine = one host = one log: the per-group Wal views are facades over
// the machine's SimWal, and their counters sum to the machine's counters.
TEST(MultiGroup, HostOwnsOneSharedWalWithPerGroupViews) {
  MultiGroupFixture f;
  for (int s = 0; s < kServers; ++s) {
    ASSERT_NE(f.cluster.host(s), nullptr);
    EXPECT_EQ(f.cluster.host(s)->num_groups(), static_cast<uint32_t>(kGroups));
    EXPECT_EQ(f.cluster.host_wal(s).num_groups(), static_cast<uint32_t>(kGroups));
    for (int g = 0; g < kGroups; ++g) {
      EXPECT_EQ(&f.cluster.wal(s, g), f.cluster.host_wal(s).group(static_cast<uint32_t>(g)));
      EXPECT_NE(f.cluster.server(s, g), nullptr);
    }
  }

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(f.put("mg/" + std::to_string(i), value_for(i)).is_ok());
  }
  for (int s = 0; s < kServers; ++s) {
    uint64_t group_sum = 0;
    for (int g = 0; g < kGroups; ++g) group_sum += f.cluster.wal(s, g).bytes_flushed();
    EXPECT_EQ(group_sum, f.cluster.host_wal(s).bytes_flushed()) << "server " << s;
    // Device flushes are machine-level (shared across groups), so every view
    // reports the same count.
    EXPECT_EQ(f.cluster.wal(s, 0).flush_ops(), f.cluster.host_wal(s).flush_ops());
  }
}

// One group checkpoints and truncates its slice of the shared log while a
// second group keeps committing; the second group's view must see no
// truncation, and its writes must keep succeeding throughout.
TEST(MultiGroup, SnapshotOnOneGroupWhileAnotherCommits) {
  SimClusterOptions opts;
  opts.replica.checkpoint_interval_slots = 16;
  MultiGroupFixture f(opts);

  const int kHot = 0;   // driven past its checkpoint interval
  const int kCold = 1;  // stays far below it
  const int kHotKeys = 48;
  int cold_written = 0;
  for (int i = 0; i < kHotKeys; ++i) {
    ASSERT_TRUE(f.put(key_in_group(kHot, i), value_for(i)).is_ok()) << i;
    // Interleave a cold-group commit every few hot writes, so the cold group
    // is mid-traffic whenever the hot group snapshots.
    if (i % 8 == 7) {
      ASSERT_TRUE(f.put(key_in_group(kCold, cold_written), value_for(cold_written)).is_ok());
      cold_written++;
    }
  }
  f.run_until([&] {
    for (int s = 0; s < kServers; ++s) {
      if (f.cluster.wal(s, kHot).truncated_bytes() == 0) return false;
    }
    return true;
  });

  for (int s = 0; s < kServers; ++s) {
    EXPECT_GT(f.cluster.wal(s, kHot).truncated_bytes(), 0u) << "server " << s;
    // Logical truncation is per group: the cold group shares the log but
    // never checkpointed, so its view reclaimed nothing.
    EXPECT_EQ(f.cluster.wal(s, kCold).truncated_bytes(), 0u) << "server " << s;
  }

  // The cold group keeps committing after its neighbor compacted.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.put(key_in_group(kCold, cold_written), value_for(cold_written)).is_ok());
    cold_written++;
  }
  for (int i = 0; i < kHotKeys; ++i) {
    auto got = f.get(key_in_group(kHot, i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), value_for(i));
  }
  for (int i = 0; i < cold_written; ++i) {
    auto got = f.get(key_in_group(kCold, i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), value_for(i));
  }
}

// Machine-level crash/restart: one power failure takes down every group on
// the host; the restarted NodeHost replays each group's slice of the one
// shared log (post-snapshot suffix for the compacted group) and all groups
// converge.
TEST(MultiGroup, MachineRestartRecoversEveryGroupFromSharedLog) {
  SimClusterOptions opts;
  opts.replica.checkpoint_interval_slots = 16;
  MultiGroupFixture f(opts);

  const int kHot = 0, kCold = 2;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(f.put(key_in_group(kHot, i), value_for(i)).is_ok());
    if (i % 10 == 9) ASSERT_TRUE(f.put(key_in_group(kCold, i / 10), value_for(i / 10)).is_ok());
  }
  f.run_until([&] {
    for (int s = 0; s < kServers; ++s) {
      if (f.cluster.wal(s, kHot).truncated_bytes() == 0) return false;
    }
    return true;
  });

  // Crash a machine that is currently follower for both probe groups.
  int victim = -1;
  for (int s = 0; s < kServers; ++s) {
    if (s != f.cluster.leader_server_of(kHot) && s != f.cluster.leader_server_of(kCold)) {
      victim = s;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  std::vector<consensus::Slot> target(kGroups, 0);
  for (int g = 0; g < kGroups; ++g) {
    int l = f.cluster.leader_server_of(g);
    ASSERT_GE(l, 0);
    target[static_cast<size_t>(g)] = f.cluster.server(l, g)->replica().last_applied();
  }

  f.cluster.crash_server(victim);
  EXPECT_EQ(f.cluster.server(victim, 0), nullptr);  // whole host gone
  f.world.run_for(200 * kMillis);
  f.cluster.restart_server(victim);

  f.run_until([&] {
    for (int g = 0; g < kGroups; ++g) {
      auto* srv = f.cluster.server(victim, g);
      if (srv == nullptr || !srv->replica().state_ready() ||
          srv->replica().last_applied() < target[static_cast<size_t>(g)]) {
        return false;
      }
    }
    return true;
  });
  for (int g = 0; g < kGroups; ++g) {
    auto* srv = f.cluster.server(victim, g);
    ASSERT_NE(srv, nullptr) << "group " << g;
    EXPECT_TRUE(srv->replica().state_ready()) << "group " << g;
    EXPECT_GE(srv->replica().last_applied(), target[static_cast<size_t>(g)]) << "group " << g;
  }
}

}  // namespace
}  // namespace rspaxos::kv
