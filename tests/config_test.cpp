// Quorum algebra tests (§3.2) and the exact reproduction of Table 1.
#include <gtest/gtest.h>

#include <map>

#include "consensus/config.h"

namespace rspaxos::consensus {
namespace {

std::vector<NodeId> ids(int n) {
  std::vector<NodeId> v;
  for (int i = 0; i < n; ++i) v.push_back(static_cast<NodeId>(i + 1));
  return v;
}

TEST(GroupConfig, MajorityPaxos) {
  GroupConfig c = GroupConfig::majority(ids(5));
  EXPECT_TRUE(c.validate().is_ok());
  EXPECT_EQ(c.n(), 5);
  EXPECT_EQ(c.qr, 3);
  EXPECT_EQ(c.qw, 3);
  EXPECT_EQ(c.x, 1);
  EXPECT_EQ(c.f(), 2);
  EXPECT_DOUBLE_EQ(c.redundancy(), 5.0);
}

TEST(GroupConfig, MajorityEvenN) {
  GroupConfig c = GroupConfig::majority(ids(4));
  EXPECT_TRUE(c.validate().is_ok());
  EXPECT_EQ(c.qr, 3);
  EXPECT_EQ(c.qw, 3);
  EXPECT_EQ(c.f(), 1);
}

TEST(GroupConfig, RsMaxXPaperSetup) {
  // §6.1: N=5, Q=4, X=3 tolerating one failure at a time.
  auto c = GroupConfig::rs_max_x(ids(5), 1);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().qr, 4);
  EXPECT_EQ(c.value().qw, 4);
  EXPECT_EQ(c.value().x, 3);
  EXPECT_EQ(c.value().f(), 1);
  // §6.1: "the data redundancy of a 5-node RS-Paxos group is 5/3".
  EXPECT_DOUBLE_EQ(c.value().redundancy(), 5.0 / 3.0);
}

TEST(GroupConfig, RsMaxXSevenNodes) {
  // §3.4 example: N=7, F=2 -> QR=QW=5, X=3.
  auto c = GroupConfig::rs_max_x(ids(7), 2);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().qr, 5);
  EXPECT_EQ(c.value().qw, 5);
  EXPECT_EQ(c.value().x, 3);
}

TEST(GroupConfig, RsMaxXDegeneratesToPaxosAt3Nodes) {
  // §6.1: "a 3-replica Paxos, RS-Paxos has no win over Paxos because it has
  // to set X=1 to tolerate a failure".
  auto c = GroupConfig::rs_max_x(ids(3), 1);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().x, 1);
}

TEST(GroupConfig, RsMaxXRejectsInfeasibleF) {
  EXPECT_FALSE(GroupConfig::rs_max_x(ids(5), 3).is_ok());
  EXPECT_FALSE(GroupConfig::rs_max_x(ids(3), 2).is_ok());
  EXPECT_FALSE(GroupConfig::rs_max_x(ids(1), 1).is_ok());
}

TEST(GroupConfig, ValidateRejectsBrokenIntersection) {
  GroupConfig c;
  c.members = ids(5);
  c.qr = 3;
  c.qw = 3;
  c.x = 2;  // 3 + 3 - 2 = 4 < 5: a chosen value could be unrecoverable (§2.3)
  EXPECT_FALSE(c.validate().is_ok());
}

TEST(GroupConfig, ValidateRejectsNaiveCombination) {
  // The §2.3 counterexample: majority quorums with θ(3,5) coding.
  GroupConfig c;
  c.members = ids(5);
  c.qr = 3;
  c.qw = 3;
  c.x = 3;
  EXPECT_FALSE(c.validate().is_ok());
}

TEST(GroupConfig, ValidateRejectsDuplicatesAndRanges) {
  GroupConfig c;
  c.members = {1, 1, 2};
  c.qr = c.qw = 2;
  c.x = 1;
  EXPECT_FALSE(c.validate().is_ok());

  GroupConfig d;
  d.members = ids(3);
  d.qr = 0;
  d.qw = 3;
  d.x = 1;
  EXPECT_FALSE(d.validate().is_ok());

  GroupConfig e;
  e.members = ids(3);
  e.qr = 4;
  e.qw = 3;
  e.x = 1;
  EXPECT_FALSE(e.validate().is_ok());

  GroupConfig f;
  f.members = {};
  EXPECT_FALSE(f.validate().is_ok());
}

TEST(GroupConfig, IndexOfIsShareIndex) {
  GroupConfig c = GroupConfig::majority({10, 20, 30});
  EXPECT_EQ(c.index_of(10), 0);
  EXPECT_EQ(c.index_of(30), 2);
  EXPECT_EQ(c.index_of(99), -1);
  EXPECT_TRUE(c.contains(20));
  EXPECT_FALSE(c.contains(99));
}

// --- Table 1 reproduction -------------------------------------------------

TEST(Table1, ExactRowsForN7) {
  auto rows = enumerate_quorum_choices(7);
  // The paper's Table 1, in order (N QW QR X F).
  std::vector<QuorumChoice> expect = {
      {4, 4, 1, 3, true},  {5, 3, 1, 2, false}, {5, 4, 2, 2, false},
      {5, 5, 3, 2, true},  {6, 2, 1, 1, false}, {6, 3, 2, 1, false},
      {6, 4, 3, 1, false}, {6, 5, 4, 1, false}, {6, 6, 5, 1, true},
  };
  ASSERT_EQ(rows.size(), expect.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], expect[i]) << "row " << i;
  }
}

TEST(Table1, EveryRowSatisfiesTheEquations) {
  for (int n : {3, 4, 5, 6, 7, 9, 11}) {
    for (const QuorumChoice& qc : enumerate_quorum_choices(n)) {
      EXPECT_EQ(qc.qr + qc.qw - qc.x, n);
      EXPECT_EQ(qc.f, n - std::max(qc.qr, qc.qw));
      EXPECT_EQ(qc.f, std::min(qc.qr, qc.qw) - qc.x);
      EXPECT_GE(qc.x, 1);
      EXPECT_GE(qc.f, 1);
    }
  }
}

TEST(Table1, MaxXRowsAreSymmetricQuorums) {
  // §3.2: "To get the maximum X, we need QW = QR".
  for (int n : {5, 7, 9, 11}) {
    for (const QuorumChoice& qc : enumerate_quorum_choices(n)) {
      if (qc.max_x_for_f) {
        EXPECT_EQ(qc.qw, qc.qr) << "n=" << n << " f=" << qc.f;
        EXPECT_EQ(qc.x, n - 2 * qc.f);
      }
    }
  }
}

TEST(Table1, HighlightedXMatchesFormula) {
  // With fixed F, X_max = min(QR,QW) - F = (N - F) - F.
  auto rows = enumerate_quorum_choices(9);
  std::map<int, int> max_x;
  for (const auto& qc : rows) {
    if (qc.max_x_for_f) max_x[qc.f] = qc.x;
  }
  EXPECT_EQ(max_x[1], 7);
  EXPECT_EQ(max_x[2], 5);
  EXPECT_EQ(max_x[3], 3);
  EXPECT_EQ(max_x[4], 1);
}

}  // namespace
}  // namespace rspaxos::consensus
