// Single-decree RS-Paxos protocol tests (§3.2):
//   - the two-phase happy path with coded shares,
//   - phase-1(c) recoverable-value selection (the paper's core rule),
//   - the §2.3 naive-combination counterexample and why RS-Paxos's quorums
//     prevent it,
//   - acceptor durability across crash/restart (§4.5).
#include <gtest/gtest.h>

#include "consensus/single.h"
#include "ec/rs_code.h"
#include "storage/wal.h"
#include "sim_harness.h"

namespace rspaxos::consensus {
namespace {

using testing::AcceptorHost;
using testing::ProposerHost;

constexpr NodeId kProposer1 = 100;
constexpr NodeId kProposer2 = 101;

GroupConfig rs5() {
  // The paper's main configuration: N=5, QR=QW=4, X=3 (F=1).
  auto c = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1);
  return c.value();
}

struct Fixture {
  sim::SimWorld world{1234};
  sim::SimNetwork net{&world};
  std::vector<std::unique_ptr<AcceptorHost>> acceptors;

  explicit Fixture(const GroupConfig& cfg) {
    for (NodeId id : cfg.members) {
      acceptors.push_back(std::make_unique<AcceptorHost>(&net, id));
    }
  }
};

TEST(SinglePaxos, DecidesOwnValueOnCleanRun) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  ProposerHost p(&f.net, kProposer1, cfg);
  std::optional<ValueId> decided;
  p.proposer().propose(to_bytes("hdr"), to_bytes("payload-payload-payload"),
                       [&](StatusOr<ValueId> r) {
                         ASSERT_TRUE(r.is_ok());
                         decided = r.value();
                       });
  f.world.run_to_completion();
  ASSERT_TRUE(decided.has_value());
  EXPECT_EQ(decided->origin, kProposer1);
  // Every acceptor that accepted holds a share of X=3, N=5 coding.
  int accepted = 0;
  for (auto& a : f.acceptors) {
    const auto* st = a->acceptor()->slot_state(0);
    if (st != nullptr && !st->accepted.is_null()) {
      accepted++;
      EXPECT_EQ(st->share.x, 3u);
      EXPECT_EQ(st->share.n, 5u);
      EXPECT_EQ(st->share.vid, *decided);
    }
  }
  EXPECT_GE(accepted, cfg.qw);
}

TEST(SinglePaxos, SharesAreSmallerThanValue) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  ProposerHost p(&f.net, kProposer1, cfg);
  Bytes value(3000, 0x7e);
  bool done = false;
  p.proposer().propose(Bytes{}, value, [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    done = true;
  });
  f.world.run_to_completion();
  ASSERT_TRUE(done);
  for (auto& a : f.acceptors) {
    const auto* st = a->acceptor()->slot_state(0);
    if (st != nullptr && !st->accepted.is_null()) {
      EXPECT_EQ(st->share.data.size(), 1000u);  // 1/X of the value
      EXPECT_EQ(st->share.value_len, 3000u);
    }
  }
}

TEST(SinglePaxos, SecondProposerRecoversChosenValue) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  ProposerHost p1(&f.net, kProposer1, cfg);
  std::optional<ValueId> v1;
  p1.proposer().propose(to_bytes("h1"), Bytes(999, 0xaa), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v1 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v1.has_value());

  // A later proposer must re-propose the chosen value, not its own.
  ProposerHost p2(&f.net, kProposer2, cfg);
  std::optional<ValueId> v2;
  p2.proposer().propose(to_bytes("h2"), Bytes(10, 0xbb), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v2 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, *v1) << "consistency: second proposer must decide the same value";
}

TEST(SinglePaxos, RecoveryWorksWithOneAcceptorDown) {
  // The fix for Figure 2: with QR=QW=4, X=3, a value chosen on 4 acceptors
  // remains recoverable after any single crash.
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  ProposerHost p1(&f.net, kProposer1, cfg);
  std::optional<ValueId> v1;
  p1.proposer().propose(Bytes{}, Bytes(600, 0x11), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v1 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v1.has_value());

  f.acceptors[2]->crash();  // like P3 in Figure 2

  ProposerHost p2(&f.net, kProposer2, cfg);
  std::optional<ValueId> v2;
  p2.proposer().propose(Bytes{}, Bytes(5, 0x22), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v2 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, *v1);
}

TEST(SinglePaxos, NaiveCombinationLosesDataTheProtocolRejectsIt) {
  // §2.3: majority quorums (3 of 5) with θ(3,5) coding. After the chosen
  // quorum shrinks by one crash, only 2 shares of the value remain reachable
  // — the value is gone. RS-Paxos forbids the configuration statically.
  GroupConfig naive;
  naive.members = {1, 2, 3, 4, 5};
  naive.qr = 3;
  naive.qw = 3;
  naive.x = 3;
  EXPECT_FALSE(naive.validate().is_ok());

  // Demonstrate the data loss the validation prevents: encode θ(3,5), store
  // on 3 acceptors (a write quorum of the naive config), crash one, observe
  // that the remaining shares cannot reconstruct.
  const ec::RsCode& code = ec::RsCodeCache::get(3, 5);
  Bytes value(300, 0x5c);
  auto shares = code.encode(value);
  // Acceptors 0,1,2 accepted; acceptor 2 dies; a later reader quorum of 3
  // can reach acceptors {0, 1, 3, 4} but only 0 and 1 hold shares.
  std::map<int, Bytes> reachable{{0, shares[0]}, {1, shares[1]}};
  EXPECT_FALSE(code.decode(reachable, value.size()).is_ok());
}

TEST(SinglePaxos, Phase1PrefersHighestBallotRecoverable) {
  // Craft promises containing two recoverable values; the higher-ballot one
  // must win.
  const ec::RsCode& code = ec::RsCodeCache::get(2, 4);
  Bytes old_value = to_bytes("old-value!");
  Bytes new_value = to_bytes("new-value?");
  auto old_shares = code.encode(old_value);
  auto new_shares = code.encode(new_value);
  ValueId vid_old{1, 1}, vid_new{2, 2};

  auto make_entry = [&](ValueId vid, Ballot b, int idx, const Bytes& data, size_t len) {
    PromiseEntry e;
    e.slot = 0;
    e.accepted_ballot = b;
    e.share.vid = vid;
    e.share.share_idx = static_cast<uint32_t>(idx);
    e.share.x = 2;
    e.share.n = 4;
    e.share.value_len = len;
    e.share.data = data;
    return e;
  };

  std::vector<PromiseEntry> entries;
  entries.push_back(make_entry(vid_old, Ballot{1, 1}, 0, old_shares[0], old_value.size()));
  entries.push_back(make_entry(vid_old, Ballot{1, 1}, 1, old_shares[1], old_value.size()));
  entries.push_back(make_entry(vid_new, Ballot{5, 2}, 2, new_shares[2], new_value.size()));
  entries.push_back(make_entry(vid_new, Ballot{5, 2}, 3, new_shares[3], new_value.size()));

  auto choice = choose_phase1_value(entries);
  ASSERT_TRUE(choice.is_ok());
  ASSERT_TRUE(choice.value().bound.has_value());
  EXPECT_EQ(choice.value().bound->vid, vid_new);
  EXPECT_EQ(choice.value().bound->payload, new_value);
}

TEST(SinglePaxos, Phase1SkipsUnrecoverableHigherBallot) {
  // One lone share of a higher-ballot value (cannot have been chosen: the
  // write quorum never completed within our read quorum) is skipped in
  // favour of a fully recoverable lower-ballot value.
  const ec::RsCode& code = ec::RsCodeCache::get(2, 4);
  Bytes low_value = to_bytes("low");
  auto low_shares = code.encode(low_value);
  ValueId vid_low{1, 1}, vid_high{2, 2};

  std::vector<PromiseEntry> entries;
  PromiseEntry lone;
  lone.accepted_ballot = Ballot{9, 9};
  lone.share.vid = vid_high;
  lone.share.share_idx = 0;
  lone.share.x = 2;
  lone.share.n = 4;
  lone.share.value_len = 100;
  lone.share.data = Bytes(50, 1);
  entries.push_back(lone);
  for (int i = 0; i < 2; ++i) {
    PromiseEntry e;
    e.accepted_ballot = Ballot{2, 1};
    e.share.vid = vid_low;
    e.share.share_idx = static_cast<uint32_t>(i);
    e.share.x = 2;
    e.share.n = 4;
    e.share.value_len = low_value.size();
    e.share.data = low_shares[static_cast<size_t>(i)];
    entries.push_back(e);
  }
  auto choice = choose_phase1_value(entries);
  ASSERT_TRUE(choice.is_ok());
  ASSERT_TRUE(choice.value().bound.has_value());
  EXPECT_EQ(choice.value().bound->vid, vid_low);
  EXPECT_EQ(choice.value().bound->payload, low_value);
}

TEST(SinglePaxos, Phase1FreeWhenNothingAccepted) {
  auto choice = choose_phase1_value({});
  ASSERT_TRUE(choice.is_ok());
  EXPECT_FALSE(choice.value().bound.has_value());
}

TEST(SinglePaxos, Phase1FreeWhenNothingRecoverable) {
  std::vector<PromiseEntry> entries;
  PromiseEntry e;
  e.accepted_ballot = Ballot{1, 1};
  e.share.vid = ValueId{1, 1};
  e.share.share_idx = 0;
  e.share.x = 3;
  e.share.n = 5;
  e.share.value_len = 99;
  e.share.data = Bytes(33, 0);
  entries.push_back(e);
  auto choice = choose_phase1_value(entries);
  ASSERT_TRUE(choice.is_ok());
  EXPECT_FALSE(choice.value().bound.has_value());
}

TEST(SinglePaxos, AcceptorPersistsBeforeReply) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  ProposerHost p(&f.net, kProposer1, cfg);
  bool done = false;
  p.proposer().propose(Bytes{}, Bytes(90, 3), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    done = true;
  });
  f.world.run_to_completion();
  ASSERT_TRUE(done);
  // Every acceptor that replied has WAL records (promise + accept).
  for (auto& a : f.acceptors) {
    const auto* st = a->acceptor()->slot_state(0);
    if (st != nullptr && !st->accepted.is_null()) {
      EXPECT_GE(a->wal().flush_ops(), 2u);
    }
  }
}

TEST(SinglePaxos, AcceptorStateSurvivesCrashRestart) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  ProposerHost p(&f.net, kProposer1, cfg);
  std::optional<ValueId> v1;
  p.proposer().propose(Bytes{}, Bytes(120, 9), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v1 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v1.has_value());

  // Crash and restart *every* acceptor: total power failure (§2.1's "to
  // tolerate more than minority crashes ... logging is necessary").
  for (auto& a : f.acceptors) a->crash();
  for (auto& a : f.acceptors) a->restart();

  ProposerHost p2(&f.net, kProposer2, cfg);
  std::optional<ValueId> v2;
  p2.proposer().propose(Bytes{}, Bytes(4, 4), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v2 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, *v1) << "stability: decisions survive full restart";
}

TEST(SinglePaxos, RetransmitsOvercomeMessageLoss) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  sim::LinkParams lossy = sim::LinkParams::lan();
  lossy.drop_prob = 0.4;
  f.net.set_default_link(lossy);
  SingleProposer::Options opts;
  opts.retransmit_interval = 50 * kMillis;
  ProposerHost p(&f.net, kProposer1, cfg, opts);
  bool done = false;
  p.proposer().propose(Bytes{}, Bytes(64, 1), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    done = true;
  });
  f.world.run_until(60 * kSeconds);
  EXPECT_TRUE(done) << "liveness under 40% message loss";
}

TEST(SinglePaxos, GivesUpAfterMaxRounds) {
  GroupConfig cfg = rs5();
  Fixture f(cfg);
  // Partition the proposer from everyone: no round can complete.
  SingleProposer::Options opts;
  opts.retransmit_interval = 10 * kMillis;
  opts.max_rounds = 3;
  ProposerHost p(&f.net, kProposer1, cfg, opts);
  f.net.partition({kProposer1}, {1, 2, 3, 4, 5});
  Status result = Status::ok();
  bool done = false;
  p.proposer().propose(Bytes{}, Bytes(1, 1), [&](StatusOr<ValueId> r) {
    done = true;
    result = r.status();
  });
  f.world.run_until(10 * kSeconds);
  // With total partition, rounds never complete; the proposer keeps
  // retransmitting within round 1 forever — so instead heal and let a rival
  // preempt it repeatedly? Simpler: verify it has not (wrongly) decided.
  EXPECT_FALSE(p.proposer().decided().has_value());
  (void)done;
  (void)result;
}

// Parameterized sweep: the protocol decides correctly across the whole
// feasible configuration space of Table 1 (here N=5 and N=7 variants).
struct CfgParam {
  int n, f;
};

class SingleAcrossConfigs : public ::testing::TestWithParam<CfgParam> {};

TEST_P(SingleAcrossConfigs, DecideAndRecover) {
  auto [n, fl] = GetParam();
  std::vector<NodeId> members;
  for (int i = 1; i <= n; ++i) members.push_back(static_cast<NodeId>(i));
  auto cfgr = GroupConfig::rs_max_x(members, fl);
  ASSERT_TRUE(cfgr.is_ok());
  GroupConfig cfg = cfgr.value();

  Fixture f(cfg);
  ProposerHost p1(&f.net, kProposer1, cfg);
  std::optional<ValueId> v1;
  p1.proposer().propose(Bytes{}, Bytes(512, 0xcd), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v1 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v1.has_value());

  // Crash F acceptors (the tolerated maximum), then recover the value.
  for (int i = 0; i < fl; ++i) f.acceptors[static_cast<size_t>(i)]->crash();
  ProposerHost p2(&f.net, kProposer2, cfg);
  std::optional<ValueId> v2;
  p2.proposer().propose(Bytes{}, Bytes(3, 1), [&](StatusOr<ValueId> r) {
    ASSERT_TRUE(r.is_ok());
    v2 = r.value();
  });
  f.world.run_to_completion();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, *v1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SingleAcrossConfigs,
                         ::testing::Values(CfgParam{3, 1}, CfgParam{5, 1}, CfgParam{5, 2},
                                           CfgParam{7, 1}, CfgParam{7, 2}, CfgParam{7, 3},
                                           CfgParam{9, 2}, CfgParam{9, 4}));

}  // namespace
}  // namespace rspaxos::consensus
