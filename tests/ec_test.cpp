// Unit + property tests for the erasure-coding substrate: GF(2^8) axioms,
// matrix algebra, and the any-X-of-N Reed-Solomon reconstruction guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "ec/cpu_features.h"
#include "ec/gf256.h"
#include "ec/gf256_simd.h"
#include "ec/matrix.h"
#include "ec/rs_code.h"
#include "util/rng.h"

namespace rspaxos {
namespace {

using ec::Matrix;
using ec::RsCode;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf::add(7, 7), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(gf::mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, MulCommutativeAssociative) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.next_below(256));
    uint8_t b = static_cast<uint8_t>(rng.next_below(256));
    uint8_t c = static_cast<uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf::mul(a, b), gf::mul(b, a));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.next_below(256));
    uint8_t b = static_cast<uint8_t>(rng.next_below(256));
    uint8_t c = static_cast<uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)), gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = gf::inv(static_cast<uint8_t>(a));
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.next_below(256));
    uint8_t b = static_cast<uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(gf::div(gf::mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int base = 0; base < 256; base += 7) {
    uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(gf::pow(static_cast<uint8_t>(base), e), acc)
          << "base=" << base << " e=" << e;
      acc = gf::mul(acc, static_cast<uint8_t>(base));
    }
  }
}

TEST(Gf256, MulAddRegionMatchesScalar) {
  Rng rng(4);
  for (uint8_t c : {0, 1, 2, 0x1d, 0xff}) {
    Bytes src(1031), dst(1031), expect(1031);
    rng.fill(src.data(), src.size());
    rng.fill(dst.data(), dst.size());
    expect = dst;
    for (size_t i = 0; i < src.size(); ++i) expect[i] ^= gf::mul(c, src[i]);
    gf::mul_add_region(dst.data(), src.data(), c, src.size());
    EXPECT_EQ(dst, expect) << "c=" << static_cast<int>(c);
  }
}

TEST(Gf256, MulRegionMatchesScalar) {
  Rng rng(5);
  for (uint8_t c : {0, 1, 3, 0x80}) {
    Bytes src(517), dst(517), expect(517);
    rng.fill(src.data(), src.size());
    for (size_t i = 0; i < src.size(); ++i) expect[i] = gf::mul(c, src[i]);
    gf::mul_region(dst.data(), src.data(), c, src.size());
    EXPECT_EQ(dst, expect);
  }
}

// --- SIMD vs scalar cross-check ---------------------------------------
// The dispatched kernels must be byte-identical to the scalar reference for
// every coefficient, length, and src/dst misalignment. Kernels handle tails
// and unaligned loads internally, so correctness must not depend on callers
// being 16/32-byte aligned.

/// Restores the dispatch tier active at construction (tests force tiers).
class TierGuard {
 public:
  TierGuard() : saved_(gf::active_tier()) {}
  ~TierGuard() { gf::force_tier(saved_); }

 private:
  cpu::GfTier saved_;
};

std::vector<cpu::GfTier> supported_simd_tiers() {
  std::vector<cpu::GfTier> out;
  for (auto t : {cpu::GfTier::kSsse3, cpu::GfTier::kAvx2,
                 cpu::GfTier::kNeon}) {
    if (cpu::tier_supported(t)) out.push_back(t);
  }
  return out;
}

TEST(GfSimd, DispatchReportsSupportedTier) {
  EXPECT_TRUE(cpu::tier_supported(gf::active_tier()));
  EXPECT_STRNE(gf::kernel_name(), "");
  // Forcing an unsupported-by-definition request leaves dispatch unchanged.
  EXPECT_TRUE(gf::force_tier(cpu::GfTier::kScalar));
  EXPECT_EQ(gf::active_tier(), cpu::GfTier::kScalar);
  EXPECT_TRUE(gf::force_tier(cpu::best_supported_tier()));
}

TEST(GfSimd, KernelsMatchScalarAllAlignmentPairs) {
  auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier built for this target";
  TierGuard guard;
  Rng rng(11);
  constexpr size_t kPad = 32, kMax = 160;
  std::vector<uint8_t> src_buf(kMax + kPad), dst_buf(kMax + kPad),
      ref_buf(kMax + kPad);
  const size_t lens[] = {0, 1, 15, 16, 17, 31, 32, 33, 64, 100};
  const uint8_t coeffs[] = {0, 1, 2, 0x1d, 0x80, 0xff};
  for (auto tier : tiers) {
    ASSERT_TRUE(gf::force_tier(tier)) << cpu::tier_name(tier);
    for (size_t sa = 0; sa < 32; ++sa) {
      for (size_t da = 0; da < 32; ++da) {
        for (size_t len : lens) {
          for (uint8_t c : coeffs) {
            rng.fill(src_buf.data(), src_buf.size());
            rng.fill(dst_buf.data(), dst_buf.size());
            std::copy(dst_buf.begin(), dst_buf.end(), ref_buf.begin());
            gf::detail::mul_add_region_scalar(ref_buf.data() + da,
                                              src_buf.data() + sa, c, len);
            gf::mul_add_region(dst_buf.data() + da, src_buf.data() + sa, c, len);
            ASSERT_EQ(Bytes(dst_buf.begin(), dst_buf.end()),
                      Bytes(ref_buf.begin(), ref_buf.end()))
                << cpu::tier_name(tier) << " mul_add sa=" << sa
                << " da=" << da << " len=" << len << " c=" << int(c);
            gf::detail::mul_region_scalar(ref_buf.data() + da,
                                          src_buf.data() + sa, c, len);
            gf::mul_region(dst_buf.data() + da, src_buf.data() + sa, c, len);
            ASSERT_EQ(Bytes(dst_buf.begin(), dst_buf.end()),
                      Bytes(ref_buf.begin(), ref_buf.end()))
                << cpu::tier_name(tier) << " mul sa=" << sa << " da=" << da
                << " len=" << len << " c=" << int(c);
          }
        }
      }
    }
  }
}

TEST(GfSimd, KernelsMatchScalarEveryLengthTo4097) {
  auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier built for this target";
  TierGuard guard;
  Rng rng(12);
  constexpr size_t kMax = 4097, kPad = 32;
  std::vector<uint8_t> src_buf(kMax + kPad), dst_buf(kMax + kPad),
      ref_buf(kMax + kPad);
  rng.fill(src_buf.data(), src_buf.size());
  // A few representative misalignment pairs; the full 32x32 grid is covered
  // at shorter lengths above.
  const std::pair<size_t, size_t> aligns[] = {{0, 0}, {1, 3}, {17, 30}};
  for (auto tier : tiers) {
    ASSERT_TRUE(gf::force_tier(tier));
    for (auto [sa, da] : aligns) {
      for (size_t len = 0; len <= kMax; ++len) {
        uint8_t c = static_cast<uint8_t>(rng.next_below(256));
        rng.fill(dst_buf.data(), dst_buf.size());
        std::copy(dst_buf.begin(), dst_buf.end(), ref_buf.begin());
        gf::detail::mul_add_region_scalar(ref_buf.data() + da,
                                          src_buf.data() + sa, c, len);
        gf::mul_add_region(dst_buf.data() + da, src_buf.data() + sa, c, len);
        ASSERT_EQ(Bytes(dst_buf.begin(), dst_buf.end()),
                  Bytes(ref_buf.begin(), ref_buf.end()))
            << cpu::tier_name(tier) << " sa=" << sa << " da=" << da
            << " len=" << len << " c=" << int(c);
      }
    }
  }
}

TEST(GfSimd, EncodeIdenticalAcrossTiers) {
  // A value encoded under any tier must produce byte-identical shares — the
  // wire/WAL format cannot depend on which CPU encoded it.
  TierGuard guard;
  Rng rng(13);
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  Bytes value(64 * 1024 - 5);
  rng.fill(value.data(), value.size());
  ASSERT_TRUE(gf::force_tier(cpu::GfTier::kScalar));
  auto scalar_shares = code.value().encode(value);
  for (auto tier : supported_simd_tiers()) {
    ASSERT_TRUE(gf::force_tier(tier));
    auto simd_shares = code.value().encode(value);
    ASSERT_EQ(simd_shares, scalar_shares) << cpu::tier_name(tier);
    // Parity-only decode exercises the inversion + kernel path per tier.
    std::map<int, Bytes> in{{2, simd_shares[2]}, {3, simd_shares[3]},
                            {4, simd_shares[4]}};
    auto out = code.value().decode(in, value.size());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value(), value) << cpu::tier_name(tier);
  }
}

TEST(RsCode, EncodeIntoMatchesEncode) {
  Rng rng(14);
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  for (size_t value_len : {size_t{0}, size_t{1}, size_t{9}, size_t{10},
                           size_t{4096}, size_t{100000}}) {
    Bytes value(value_len);
    rng.fill(value.data(), value.size());
    auto shares = code.value().encode(value);
    size_t ss = code.value().share_size(value_len);
    // Destination buffers deliberately misaligned (offset 1..5 into padding)
    // to prove the zero-copy path accepts arbitrary frame offsets.
    std::vector<Bytes> bufs(5, Bytes(ss + 8, 0xee));
    std::vector<uint8_t*> dsts(5);
    for (size_t i = 0; i < 5; ++i) dsts[i] = bufs[i].data() + 1 + i;
    code.value().encode_into(value, dsts.data());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(Bytes(dsts[i], dsts[i] + ss), shares[i]) << "share " << i;
      EXPECT_EQ(bufs[i][0], 0xee);               // no under-run
      EXPECT_EQ(bufs[i][1 + i + ss], 0xee);      // no over-run
    }
  }
}

TEST(RsCode, DecodeMixedSystematicParitySubsets) {
  // The partial-systematic fast path: present systematic shares must be
  // memcpy'd verbatim and missing rows reconstructed, for every mixed subset.
  Rng rng(15);
  auto code = RsCode::create(3, 6);
  ASSERT_TRUE(code.is_ok());
  Bytes value(3000);
  rng.fill(value.data(), value.size());
  auto shares = code.value().encode(value);
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      for (int c = b + 1; c < 6; ++c) {
        std::map<int, Bytes> in{{a, shares[static_cast<size_t>(a)]},
                                {b, shares[static_cast<size_t>(b)]},
                                {c, shares[static_cast<size_t>(c)]}};
        auto out = code.value().decode(in, value.size());
        ASSERT_TRUE(out.is_ok()) << a << "," << b << "," << c;
        EXPECT_EQ(out.value(), value) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Matrix, IdentityTimesIsNoop) {
  Matrix m(3, 3);
  uint8_t v = 1;
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  Matrix i = Matrix::identity(3);
  EXPECT_EQ(i.times(m), m);
  EXPECT_EQ(m.times(i), m);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.next_below(8);
    Matrix m(n, n);
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c) m.at(r, c) = static_cast<uint8_t>(rng.next_below(256));
    auto inv = m.inverted();
    if (!inv.is_ok()) continue;  // singular random matrix: skip
    EXPECT_EQ(m.times(inv.value()), Matrix::identity(n));
    EXPECT_EQ(inv.value().times(m), Matrix::identity(n));
  }
}

TEST(Matrix, SingularDetected) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;  // duplicate row
  EXPECT_FALSE(m.inverted().is_ok());
  Matrix z(3, 3);  // all zero
  EXPECT_FALSE(z.inverted().is_ok());
}

TEST(Matrix, NonSquareInverseRejected) {
  Matrix m(2, 3);
  EXPECT_FALSE(m.inverted().is_ok());
}

TEST(Matrix, VandermondeSubmatricesInvertible) {
  // The RS guarantee rests on this: any m rows of the n x m Vandermonde are
  // independent.
  Matrix v = Matrix::vandermonde(8, 3);
  for (size_t a = 0; a < 8; ++a) {
    for (size_t b = a + 1; b < 8; ++b) {
      for (size_t c = b + 1; c < 8; ++c) {
        EXPECT_TRUE(v.select_rows({a, b, c}).inverted().is_ok())
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(RsCode, RejectsBadParams) {
  EXPECT_FALSE(RsCode::create(0, 5).is_ok());
  EXPECT_FALSE(RsCode::create(3, 2).is_ok());
  EXPECT_FALSE(RsCode::create(1, 256).is_ok());
  EXPECT_TRUE(RsCode::create(1, 1).is_ok());
  EXPECT_TRUE(RsCode::create(3, 5).is_ok());
}

TEST(RsCode, SystematicSharesAreDataSplits) {
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  Bytes value = to_bytes("abcdefghi");  // 9 bytes -> 3 per share
  auto shares = code.value().encode(value);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(to_string(shares[0]), "abc");
  EXPECT_EQ(to_string(shares[1]), "def");
  EXPECT_EQ(to_string(shares[2]), "ghi");
}

TEST(RsCode, ShareSizeIsCeilDiv) {
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value().share_size(9), 3u);
  EXPECT_EQ(code.value().share_size(10), 4u);
  EXPECT_EQ(code.value().share_size(0), 0u);
  EXPECT_EQ(code.value().share_size(1), 1u);
}

TEST(RsCode, EncodeShareMatchesFullEncode) {
  Rng rng(7);
  auto code = RsCode::create(4, 7);
  ASSERT_TRUE(code.is_ok());
  Bytes value(1000);
  rng.fill(value.data(), value.size());
  auto shares = code.value().encode(value);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(code.value().encode_share(value, i), shares[static_cast<size_t>(i)])
        << "share " << i;
  }
}

TEST(RsCode, EmptyValue) {
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  auto shares = code.value().encode(Bytes{});
  for (const auto& s : shares) EXPECT_TRUE(s.empty());
  std::map<int, Bytes> in{{0, {}}, {2, {}}, {4, {}}};
  auto out = code.value().decode(in, 0);
  ASSERT_TRUE(out.is_ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(RsCode, NotEnoughSharesFails) {
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  Bytes value(100, 0x42);
  auto shares = code.value().encode(value);
  std::map<int, Bytes> in{{0, shares[0]}, {3, shares[3]}};
  EXPECT_FALSE(code.value().decode(in, value.size()).is_ok());
}

TEST(RsCode, InconsistentShareSizeRejected) {
  auto code = RsCode::create(2, 4);
  ASSERT_TRUE(code.is_ok());
  Bytes value(64, 1);
  auto shares = code.value().encode(value);
  std::map<int, Bytes> in{{0, shares[0]}, {1, Bytes(5, 0)}};
  EXPECT_FALSE(code.value().decode(in, value.size()).is_ok());
}

TEST(RsCode, OutOfRangeIndexRejected) {
  auto code = RsCode::create(2, 4);
  ASSERT_TRUE(code.is_ok());
  Bytes value(64, 1);
  auto shares = code.value().encode(value);
  std::map<int, Bytes> in{{0, shares[0]}, {7, shares[1]}};
  EXPECT_FALSE(code.value().decode(in, value.size()).is_ok());
}

TEST(RsCode, CacheReturnsSameInstance) {
  const RsCode& a = ec::RsCodeCache::get(3, 5);
  const RsCode& b = ec::RsCodeCache::get(3, 5);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.m(), 3);
  EXPECT_EQ(a.n(), 5);
}

// Property sweep: every (m, n) in a practical range, every subset size m of
// shares (sampled), every value size including padding edge cases.
struct RsParam {
  int m, n;
  size_t value_len;
};

class RsRoundTrip : public ::testing::TestWithParam<RsParam> {};

TEST_P(RsRoundTrip, AnyMSubsetReconstructs) {
  const auto [m, n, value_len] = GetParam();
  auto code = RsCode::create(m, n);
  ASSERT_TRUE(code.is_ok());
  Rng rng(static_cast<uint64_t>(m * 1000 + n * 10) + value_len);
  Bytes value(value_len);
  rng.fill(value.data(), value.size());
  auto shares = code.value().encode(value);
  ASSERT_EQ(shares.size(), static_cast<size_t>(n));

  // Try up to 20 random m-subsets plus the "last m" and "first m" subsets.
  std::vector<std::vector<int>> subsets;
  std::vector<int> first, last;
  for (int i = 0; i < m; ++i) first.push_back(i);
  for (int i = n - m; i < n; ++i) last.push_back(i);
  subsets.push_back(first);
  subsets.push_back(last);
  for (int t = 0; t < 20; ++t) {
    std::vector<int> all(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i) {
      std::swap(all[static_cast<size_t>(i)], all[rng.next_below(static_cast<uint64_t>(i + 1))]);
    }
    all.resize(static_cast<size_t>(m));
    subsets.push_back(all);
  }
  for (const auto& subset : subsets) {
    std::map<int, Bytes> in;
    for (int idx : subset) in.emplace(idx, shares[static_cast<size_t>(idx)]);
    auto out = code.value().decode(in, value.size());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value(), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsRoundTrip,
    ::testing::Values(
        RsParam{1, 1, 17}, RsParam{1, 3, 100}, RsParam{1, 5, 64},
        RsParam{2, 3, 99}, RsParam{2, 4, 1}, RsParam{2, 5, 1000},
        RsParam{3, 5, 9}, RsParam{3, 5, 10}, RsParam{3, 5, 11},
        RsParam{3, 5, 65536}, RsParam{3, 7, 12345}, RsParam{4, 6, 1024},
        RsParam{4, 7, 31}, RsParam{5, 7, 4099}, RsParam{5, 9, 77},
        RsParam{6, 11, 300}, RsParam{8, 12, 512}, RsParam{10, 14, 129},
        RsParam{3, 5, 0}, RsParam{7, 7, 1000}));

// The paper's redundancy example (§2.2): n=5, m=3 -> r = 5/3.
TEST(RsCode, RedundancyMath) {
  auto code = RsCode::create(3, 5);
  ASSERT_TRUE(code.is_ok());
  size_t value = 3 * 1000;
  size_t total_stored = 5 * code.value().share_size(value);
  EXPECT_DOUBLE_EQ(static_cast<double>(total_stored) / static_cast<double>(value),
                   5.0 / 3.0);
}

}  // namespace
}  // namespace rspaxos
