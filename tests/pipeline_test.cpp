// Pipelined client path: the bounded in-flight window, out-of-order
// completion across shards (one stalled shard must not head-of-line block
// the others), and definitive resolution of a full window through a leader
// failover.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"

namespace rspaxos::kv {
namespace {

/// The i-th key routed to shard `group` under the current hash contract.
std::string key_in_group(uint32_t group, uint32_t num_groups, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "pl/" + std::to_string(n);
    if (shard_of(key, num_groups) == group && found++ == i) return key;
  }
}

consensus::ReplicaOptions fast_elections() {
  consensus::ReplicaOptions r;
  r.heartbeat_interval = 20 * kMillis;
  r.election_timeout_min = 150 * kMillis;
  r.election_timeout_max = 300 * kMillis;
  r.lease_duration = 100 * kMillis;
  r.max_clock_drift = 10 * kMillis;
  return r;
}

TEST(Pipeline, WindowBoundsInflightAndDrainsQueue) {
  sim::SimWorld world(51);
  SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = true;
  opts.f = 1;
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();

  KvClient::Options copts;
  copts.request_timeout = 1000 * kMillis;
  copts.max_inflight = 16;
  auto client = cluster.make_client(0, copts);

  constexpr int kOps = 100;
  uint64_t resolved = 0, ok = 0;
  for (int i = 0; i < kOps; ++i) {
    client->put("w-" + std::to_string(i), to_bytes("v" + std::to_string(i)),
                [&resolved, &ok](Status s) {
                  ++resolved;
                  if (s.is_ok()) ++ok;
                });
  }
  // Submission alone must not widen the window.
  EXPECT_LE(client->inflight(), 16u);
  EXPECT_EQ(client->queued(), kOps - client->inflight());

  size_t max_seen = 0;
  TimeMicros deadline = world.now() + 60 * kSeconds;
  while (resolved < kOps && world.now() < deadline) {
    world.run_for(1 * kMillis);
    max_seen = std::max(max_seen, client->inflight());
  }
  EXPECT_EQ(resolved, static_cast<uint64_t>(kOps));
  EXPECT_EQ(ok, static_cast<uint64_t>(kOps));
  EXPECT_LE(max_seen, 16u);
  EXPECT_EQ(client->inflight(), 0u);
  EXPECT_EQ(client->queued(), 0u);
}

TEST(Pipeline, StalledShardDoesNotHeadOfLineBlockOthers) {
  sim::SimWorld world(52);
  SimClusterOptions opts;
  opts.num_servers = 5;
  opts.num_groups = 4;
  opts.rs_mode = true;
  opts.f = 1;
  opts.spread_leaders = true;
  opts.replica = fast_elections();
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();

  KvClient::Options copts;
  copts.request_timeout = 400 * kMillis;
  copts.max_attempts = 100;
  copts.max_inflight = 32;
  auto client = cluster.make_client(0, copts);

  // Prime the leader cache so the stall below is the election, not discovery.
  for (uint32_t g = 0; g < 4; ++g) {
    std::optional<Status> done;
    client->put(key_in_group(g, 4, 0), to_bytes("prime"),
                [&done](Status s) { done = s; });
    TimeMicros d = world.now() + 30 * kSeconds;
    while (!done.has_value() && world.now() < d) world.run_for(5 * kMillis);
    ASSERT_TRUE(done.has_value() && done->is_ok()) << "prime group " << g;
  }

  // Stall shard 0 by crashing its leader, then pipeline one op into the
  // stalled shard followed by a batch into the healthy shards.
  int lead0 = cluster.leader_server_of(0);
  ASSERT_GE(lead0, 0);
  cluster.crash_server(lead0);

  std::vector<std::string> completion_order;
  uint64_t resolved = 0;
  auto track = [&](const std::string& tag) {
    return [&completion_order, &resolved, tag](Status s) {
      EXPECT_TRUE(s.is_ok()) << tag << ": " << s.to_string();
      completion_order.push_back(tag);
      ++resolved;
    };
  };
  client->put(key_in_group(0, 4, 1), to_bytes("stalled"), track("g0"));
  constexpr int kFastPerGroup = 4;
  for (uint32_t g = 1; g < 4; ++g) {
    for (int i = 0; i < kFastPerGroup; ++i) {
      client->put(key_in_group(g, 4, 1 + i), to_bytes("fast"),
                  track("g" + std::to_string(g) + "-" + std::to_string(i)));
    }
  }
  const uint64_t kTotal = 1 + 3 * kFastPerGroup;
  TimeMicros deadline = world.now() + 60 * kSeconds;
  while (resolved < kTotal && world.now() < deadline) world.run_for(1 * kMillis);
  ASSERT_EQ(resolved, kTotal);

  // Every healthy-shard op must have completed before the stalled shard's op:
  // out-of-order completion, no head-of-line blocking on the shared window.
  ASSERT_FALSE(completion_order.empty());
  EXPECT_EQ(completion_order.back(), "g0");
  for (size_t i = 0; i + 1 < completion_order.size(); ++i) {
    EXPECT_NE(completion_order[i], "g0") << "g0 completed before healthy ops";
  }
}

TEST(Pipeline, LeaderFailoverWithFullWindowResolvesEveryOp) {
  sim::SimWorld world(53);
  SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = true;
  opts.f = 1;
  opts.replica = fast_elections();
  SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();

  KvClient::Options copts;
  copts.request_timeout = 400 * kMillis;
  copts.max_attempts = 500;
  copts.max_inflight = 32;
  auto client = cluster.make_client(0, copts);

  constexpr int kOps = 64;
  std::set<int> acked;
  uint64_t resolved = 0;
  for (int i = 0; i < kOps; ++i) {
    client->put("fo-" + std::to_string(i), to_bytes("v" + std::to_string(i)),
                [&acked, &resolved, i](Status s) {
                  if (s.is_ok()) acked.insert(i);
                  ++resolved;
                });
  }
  // Let the window fill and some ops commit, then kill the leader under it.
  world.run_for(5 * kMillis);
  int lead = cluster.leader_server_of(0);
  ASSERT_GE(lead, 0);
  cluster.crash_server(lead);

  TimeMicros deadline = world.now() + 120 * kSeconds;
  while (resolved < kOps && world.now() < deadline) world.run_for(5 * kMillis);
  EXPECT_EQ(resolved, static_cast<uint64_t>(kOps))
      << "every windowed op must resolve definitively through the failover";
  EXPECT_FALSE(acked.empty());

  // Acked writes survived the crash: each reads back its exact value.
  for (int i : acked) {
    std::optional<StatusOr<Bytes>> out;
    client->get("fo-" + std::to_string(i),
                [&out](StatusOr<Bytes> r) { out = std::move(r); });
    TimeMicros d2 = world.now() + 30 * kSeconds;
    while (!out.has_value() && world.now() < d2) world.run_for(5 * kMillis);
    ASSERT_TRUE(out.has_value() && out->is_ok()) << "acked key fo-" << i;
    EXPECT_EQ(to_string(out->value()), "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace rspaxos::kv
