// InstallSnapshot over the real stack: five replicas on actual TCP sockets
// with fsync'ing file WALs and file snapshot stores. Four replicas run a
// workload past several checkpoints (compacting their WALs); the fifth starts
// from nothing afterwards — its gap predates every peer's log start, so the
// only way home is reconstructing the erasure-coded checkpoint from X peer
// fragments, then replaying the surviving log suffix.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <optional>
#include <thread>

#include "consensus/config.h"
#include "kv/client.h"
#include "kv/server.h"
#include "net/tcp_transport.h"
#include "snapshot/snapshot_store.h"
#include "storage/file_wal.h"

namespace rspaxos {
namespace {

constexpr int kReplicas = 5;
constexpr NodeId kClientId = 100;

// Runs `fn` on the node's event loop and returns its result: replica state
// may only be touched from the loop thread.
template <typename Fn>
auto on_loop(net::TcpNode* node, Fn fn) -> decltype(fn()) {
  std::promise<decltype(fn())> p;
  auto fut = p.get_future();
  node->loop().post([&] { p.set_value(fn()); });
  return fut.get();
}

template <typename Pred>
bool poll_until(Pred done, int timeout_ms = 30000) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return done();
}

TEST(SnapshotTcp, LateReplicaConvergesViaInstallSnapshot) {
  auto ports = net::TcpTransport::free_ports(kReplicas + 1);
  ASSERT_EQ(ports.size(), static_cast<size_t>(kReplicas + 1));
  std::map<NodeId, net::PeerAddr> addrs;
  for (int i = 0; i < kReplicas; ++i) {
    addrs[static_cast<NodeId>(i + 1)] =
        net::PeerAddr{"127.0.0.1", ports[static_cast<size_t>(i)]};
  }
  addrs[kClientId] = net::PeerAddr{"127.0.0.1", ports[kReplicas]};

  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_snap_tcp_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<NodeId> members;
  for (int i = 1; i <= kReplicas; ++i) members.push_back(static_cast<NodeId>(i));
  auto cfg = consensus::GroupConfig::rs_max_x(members, 1).value();  // theta(3,5)

  consensus::ReplicaOptions ropts;
  ropts.heartbeat_interval = 30 * kMillis;
  ropts.election_timeout_min = 300 * kMillis;
  ropts.election_timeout_max = 600 * kMillis;
  ropts.lease_duration = 250 * kMillis;
  ropts.checkpoint_interval_slots = 16;

  std::vector<std::unique_ptr<storage::FileWal>> wals(kReplicas);
  std::vector<std::unique_ptr<snapshot::FileSnapshotStore>> snaps(kReplicas);
  std::vector<std::unique_ptr<kv::KvServer>> servers(kReplicas);
  std::vector<net::TcpNode*> nodes(kReplicas, nullptr);
  auto transport = std::make_unique<net::TcpTransport>(addrs);

  auto start_replica = [&](int i, bool bootstrap) {
    auto node = transport->start_node(static_cast<NodeId>(i + 1));
    ASSERT_TRUE(node.is_ok()) << node.status().to_string();
    nodes[static_cast<size_t>(i)] = node.value();
    auto wal = storage::FileWal::open((dir / ("wal-" + std::to_string(i + 1))).string());
    ASSERT_TRUE(wal.is_ok()) << wal.status().to_string();
    wals[static_cast<size_t>(i)] = std::move(wal).value();
    auto snap =
        snapshot::FileSnapshotStore::open((dir / ("snap-" + std::to_string(i + 1))).string());
    ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();
    snaps[static_cast<size_t>(i)] = std::move(snap).value();
    consensus::ReplicaOptions o = ropts;
    o.bootstrap_leader = bootstrap;
    servers[static_cast<size_t>(i)] = std::make_unique<kv::KvServer>(
        node.value(), wals[static_cast<size_t>(i)].get(), cfg, o, kv::KvServerOptions{},
        snaps[static_cast<size_t>(i)].get());
    // Install + start on the loop thread: reconnecting peers can deliver
    // messages the instant the handler is visible, and replica state is
    // loop-thread-only.
    kv::KvServer* srv = servers[static_cast<size_t>(i)].get();
    net::TcpNode* nd = node.value();
    on_loop(nd, [&] {
      nd->set_handler(srv);
      srv->start();
      return true;
    });
  };

  // Replicas 1..4 only; replica 5 stays dark. QW = 4, so writes still commit.
  for (int i = 0; i < kReplicas - 1; ++i) start_replica(i, /*bootstrap=*/i == 0);

  auto cnode = transport->start_node(kClientId);
  ASSERT_TRUE(cnode.is_ok());
  kv::RoutingTable routing;
  routing.group_members.push_back(members);
  routing.map = kv::ShardMap::identity(1, 1);
  kv::KvClient::Options copts;
  copts.request_timeout = 2000 * kMillis;
  kv::KvClient client(cnode.value(), routing, copts);
  cnode.value()->set_handler(&client);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto value_for = [](int i) { return Bytes(1024, static_cast<uint8_t>('a' + i % 26)); };
  // KvClient is loop-thread-only (no internal locks): issue every call from
  // the client node's loop, never from the test thread.
  const int kKeys = 60;
  for (int i = 0; i < kKeys; ++i) {
    std::promise<Status> done;
    auto fut = done.get_future();
    cnode.value()->loop().post([&, i] {
      client.put("k" + std::to_string(i), value_for(i),
                 [&](Status s) { done.set_value(s); });
    });
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready) << i;
    ASSERT_TRUE(fut.get().is_ok()) << "put k" << i;
  }

  // Every running replica must cut/adopt a checkpoint and truncate its WAL.
  ASSERT_TRUE(poll_until([&] {
    for (int i = 0; i < kReplicas - 1; ++i) {
      auto compacted = on_loop(nodes[static_cast<size_t>(i)], [&] {
        return servers[static_cast<size_t>(i)]->replica().log_start() > 1 &&
               wals[static_cast<size_t>(i)]->truncated_bytes() > 0;
      });
      if (!compacted) return false;
    }
    return true;
  })) << "replicas never compacted their WALs";

  auto leader_applied = on_loop(nodes[0], [&] {
    return servers[0]->replica().last_applied();
  });
  ASSERT_GT(leader_applied, 16u);

  // Cold cluster restart: tear the whole stack down (transport queues and all
  // volatile state die with it) and bring it back up — the four old replicas
  // restore from WAL + snapshot store, and a brand-new fifth joins. The
  // fifth's next-needed slot (1) is below every peer's log start and no
  // transport backlog survives, so the only way home is InstallSnapshot.
  transport.reset();
  servers.clear();
  servers.resize(kReplicas);
  wals.clear();
  wals.resize(kReplicas);
  snaps.clear();
  snaps.resize(kReplicas);
  nodes.assign(kReplicas, nullptr);
  transport = std::make_unique<net::TcpTransport>(addrs);
  for (int i = 0; i < kReplicas; ++i) start_replica(i, /*bootstrap=*/false);

  cnode = transport->start_node(kClientId);
  ASSERT_TRUE(cnode.is_ok());
  kv::KvClient client2(cnode.value(), routing, copts);
  cnode.value()->set_handler(&client2);

  net::TcpNode* late = nodes[kReplicas - 1];
  kv::KvServer* late_srv = servers[kReplicas - 1].get();
  ASSERT_TRUE(poll_until([&] {
    return on_loop(late, [&] {
      return late_srv->replica().state_ready() &&
             late_srv->replica().last_applied() >= leader_applied;
    });
  })) << "late replica never converged";

  auto installs = on_loop(late, [&] { return late_srv->replica().stats().snapshot_installs; });
  EXPECT_GE(installs, 1u) << "convergence must have gone through InstallSnapshot";
  auto snap_applied = on_loop(late, [&] { return late_srv->replica().snapshot_applied(); });
  EXPECT_GT(snap_applied, 0u);
  // Its durable snapshot footprint is one coded fragment, not the full image.
  EXPECT_GT(snaps[kReplicas - 1]->stored_bytes(), 0u);
  EXPECT_LT(snaps[kReplicas - 1]->stored_bytes(), static_cast<uint64_t>(kKeys) * 1024);

  // The late replica's KV state matches what was written.
  for (int i : {0, 13, 42, kKeys - 1}) {
    std::promise<StatusOr<Bytes>> done;
    auto fut = done.get_future();
    cnode.value()->loop().post([&, i] {
      client2.get("k" + std::to_string(i),
                  [&](StatusOr<Bytes> r) { done.set_value(std::move(r)); });
    });
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready);
    auto got = fut.get();
    ASSERT_TRUE(got.is_ok()) << "k" << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i));
  }

  // Transport first (joins all I/O threads), then servers/WALs are safe to free.
  transport.reset();
  servers.clear();
  wals.clear();
  snaps.clear();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rspaxos
