// Snapshot store tests: manifest wire-format integrity, the save/load
// contract across all three store implementations, and the crash-consistency
// guarantee (a crash during save restores the previous snapshot, never a torn
// mix).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "sim/sim_disk.h"
#include "sim/sim_world.h"
#include "snapshot/manifest.h"
#include "snapshot/sim_snapshot_store.h"
#include "snapshot/snapshot_store.h"
#include "util/crc32.h"

namespace rspaxos {
namespace {

using snapshot::FileSnapshotStore;
using snapshot::MemSnapshotStore;
using snapshot::SimSnapshotStore;
using snapshot::SnapshotManifest;

SnapshotManifest sample_manifest(uint64_t id) {
  SnapshotManifest m;
  m.checkpoint_id = id;
  m.applied_index = id;
  m.next_slot = id + 1;
  m.epoch = 3;
  m.share_idx = 2;
  m.x = 3;
  m.n = 5;
  m.state_len = 1000;
  m.state_crc = 0xdeadbeef;
  m.frag_len = 334;
  m.frag_crc = 0x12345678;
  m.config_blob = to_bytes("opaque-config");
  return m;
}

TEST(Manifest, RoundTrip) {
  SnapshotManifest m = sample_manifest(77);
  auto d = SnapshotManifest::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value(), m);
}

TEST(Manifest, CorruptionDetected) {
  Bytes wire = sample_manifest(77).encode();
  // Flip every byte in turn: no single-byte corruption may decode cleanly
  // into a *different* manifest. (Flips in the CRC field itself that still
  // decode would be caught by the equality check.)
  SnapshotManifest orig = sample_manifest(77);
  for (size_t i = 0; i < wire.size(); ++i) {
    Bytes bad = wire;
    bad[i] ^= 0xff;
    auto d = SnapshotManifest::decode(bad);
    if (d.is_ok()) EXPECT_EQ(d.value(), orig) << "byte " << i;
    else SUCCEED();
  }
  // Truncations never decode.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto d = SnapshotManifest::decode(BytesView(wire.data(), len));
    EXPECT_TRUE(d.is_ok() == false) << "len " << len;
  }
}

TEST(Manifest, RsStaysVersion1AndCodedBumpsToVersion2) {
  // rs manifests must stay byte-identical to the pre-policy format: the
  // version word (bytes 4..8, little-endian after the magic) is still 1 and
  // no code byte appears anywhere in the image.
  SnapshotManifest rs = sample_manifest(77);
  ASSERT_EQ(rs.code, ec::CodeId::kRs);
  Bytes rs_wire = rs.encode();
  EXPECT_EQ(rs_wire[4], 1);
  EXPECT_EQ(rs_wire[5], 0);

  SnapshotManifest hh = sample_manifest(77);
  hh.code = ec::CodeId::kHh;
  Bytes hh_wire = hh.encode();
  EXPECT_EQ(hh_wire[4], 2);
  EXPECT_EQ(hh_wire.size(), rs_wire.size() + 1);  // exactly one code byte
  auto d = SnapshotManifest::decode(hh_wire);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value(), hh);

  // rs smuggled into a version-2 image is a forgery, not a valid spelling:
  // rebuild the frame with code byte 0 and a fixed-up CRC.
  Bytes forged = hh_wire;
  // Both images are identical up to the inserted code byte, so the first
  // difference past the version word locates it.
  size_t code_off = 0;
  for (size_t i = 8; i < rs_wire.size(); ++i) {
    if (hh_wire[i] != rs_wire[i]) {
      code_off = i;
      break;
    }
  }
  ASSERT_GT(code_off, 0u);
  ASSERT_EQ(forged[code_off], static_cast<uint8_t>(ec::CodeId::kHh));
  forged[code_off] = 0;  // kRs
  uint32_t crc = crc32c(BytesView(forged.data(), forged.size() - 4));
  for (int i = 0; i < 4; ++i) {
    forged[forged.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_FALSE(SnapshotManifest::decode(forged).is_ok());
}

TEST(MemStore, SaveLoadReplace) {
  MemSnapshotStore store;
  EXPECT_TRUE(store.load_manifest().is_ok() == false);
  EXPECT_TRUE(store.load_fragment().is_ok() == false);
  EXPECT_EQ(store.stored_bytes(), 0u);

  bool saved = false;
  store.save(sample_manifest(10), to_bytes("frag-10"), [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    saved = true;
  });
  EXPECT_TRUE(saved);
  ASSERT_TRUE(store.load_manifest().is_ok());
  EXPECT_EQ(store.load_manifest().value().checkpoint_id, 10u);
  EXPECT_EQ(store.load_fragment().value(), to_bytes("frag-10"));
  EXPECT_GT(store.stored_bytes(), 0u);

  // Newer snapshot replaces the old one wholesale.
  store.save(sample_manifest(20), to_bytes("frag-20!"), nullptr);
  EXPECT_EQ(store.load_manifest().value().checkpoint_id, 20u);
  EXPECT_EQ(store.load_fragment().value(), to_bytes("frag-20!"));
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rspaxos_snap_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FileStoreTest, SaveLoadReopenReplace) {
  auto open1 = FileSnapshotStore::open(dir_.string());
  ASSERT_TRUE(open1.is_ok());
  auto& store = *open1.value();
  EXPECT_TRUE(store.load_manifest().is_ok() == false);

  Bytes frag(4096, 0xab);
  SnapshotManifest man = sample_manifest(5);
  man.frag_len = frag.size();
  man.frag_crc = crc32c(frag.data(), frag.size());
  bool saved = false;
  store.save(man, frag, [&](Status s) {
    EXPECT_TRUE(s.is_ok()) << s.message();
    saved = true;
  });
  EXPECT_TRUE(saved);

  // A fresh open (process restart) sees exactly the committed snapshot.
  auto open2 = FileSnapshotStore::open(dir_.string());
  ASSERT_TRUE(open2.is_ok());
  auto man2 = open2.value()->load_manifest();
  ASSERT_TRUE(man2.is_ok());
  EXPECT_EQ(man2.value(), man);
  auto frag2 = open2.value()->load_fragment();
  ASSERT_TRUE(frag2.is_ok());
  EXPECT_EQ(frag2.value(), frag);

  // Replacing with a newer checkpoint unlinks the old fragment file.
  Bytes frag3(2048, 0xcd);
  SnapshotManifest man3 = sample_manifest(9);
  man3.frag_len = frag3.size();
  man3.frag_crc = crc32c(frag3.data(), frag3.size());
  open2.value()->save(man3, frag3, nullptr);
  EXPECT_EQ(open2.value()->load_manifest().value().checkpoint_id, 9u);
  EXPECT_EQ(open2.value()->load_fragment().value(), frag3);
  int frag_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().filename().string().find(".frag") != std::string::npos) frag_files++;
  }
  EXPECT_EQ(frag_files, 1) << "stale fragment files must be unlinked";
}

TEST_F(FileStoreTest, CorruptFragmentRejected) {
  auto open1 = FileSnapshotStore::open(dir_.string());
  ASSERT_TRUE(open1.is_ok());
  Bytes frag(1024, 0x42);
  SnapshotManifest man = sample_manifest(3);
  man.frag_len = frag.size();
  man.frag_crc = crc32c(frag.data(), frag.size());
  open1.value()->save(man, frag, nullptr);

  // Corrupt one byte of the fragment file on disk (bit rot).
  std::filesystem::path frag_path;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().filename().string().find(".frag") != std::string::npos)
      frag_path = e.path();
  }
  ASSERT_FALSE(frag_path.empty());
  {
    std::fstream f(frag_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x00');
  }
  auto open2 = FileSnapshotStore::open(dir_.string());
  ASSERT_TRUE(open2.is_ok());
  EXPECT_TRUE(open2.value()->load_fragment().is_ok() == false)
      << "CRC-mismatched fragment must not load";
}

TEST(SimStore, SaveCommitsOnlyAfterDiskWrite) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});  // 10 ms/op
  SimSnapshotStore store(&disk);
  bool durable = false;
  store.save(sample_manifest(4), to_bytes("frag"), [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    durable = true;
  });
  EXPECT_FALSE(durable);
  EXPECT_TRUE(store.load_manifest().is_ok() == false) << "not committed yet";
  w.run_to_completion();
  EXPECT_TRUE(durable);
  EXPECT_EQ(store.load_manifest().value().checkpoint_id, 4u);
  EXPECT_GT(store.stored_bytes(), 0u);
}

TEST(SimStore, CrashDuringSaveKeepsPreviousSnapshot) {
  sim::SimWorld w(1);
  sim::SimDisk disk(&w, sim::DiskParams{100, 1e9});
  SimSnapshotStore store(&disk);
  store.save(sample_manifest(4), to_bytes("frag-4"), nullptr);
  w.run_to_completion();  // checkpoint 4 committed

  bool second_cb = false;
  store.save(sample_manifest(8), to_bytes("frag-8"), [&](Status) { second_cb = true; });
  store.drop_unflushed();  // power failure mid-save
  w.run_to_completion();
  // The committed snapshot survives; the torn save never becomes visible.
  EXPECT_FALSE(second_cb) << "lost save must not report durability";
  ASSERT_TRUE(store.load_manifest().is_ok());
  EXPECT_EQ(store.load_manifest().value().checkpoint_id, 4u);
  EXPECT_EQ(store.load_fragment().value(), to_bytes("frag-4"));
}

}  // namespace
}  // namespace rspaxos
