// Wire-format tests: every consensus and KV message round-trips, and
// malformed/truncated/hostile input is rejected without UB.
#include <gtest/gtest.h>

#include <algorithm>

#include "consensus/msg.h"
#include "kv/command.h"
#include "kv/migration.h"
#include "kv/shard_map.h"
#include "util/rng.h"

namespace rspaxos::consensus {
namespace {

CodedShare sample_share() {
  CodedShare s;
  s.vid = ValueId{3, 77};
  s.kind = EntryKind::kNormal;
  s.share_idx = 2;
  s.x = 3;
  s.n = 5;
  s.value_len = 1000;
  s.header = to_bytes("hdr");
  s.data = to_bytes("share-bytes");
  return s;
}

bool share_eq(const CodedShare& a, const CodedShare& b) {
  return a.vid == b.vid && a.kind == b.kind && a.share_idx == b.share_idx && a.x == b.x &&
         a.n == b.n && a.value_len == b.value_len && a.header == b.header && a.data == b.data;
}

TEST(Msg, BallotOrdering) {
  Ballot a{1, 5}, b{1, 6}, c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_TRUE(Ballot::null().is_null());
  EXPECT_FALSE(a.is_null());
  EXPECT_EQ(std::max(a, c), c);
}

TEST(Msg, PrepareRoundTrip) {
  PrepareMsg m;
  m.epoch = 4;
  m.ballot = Ballot{9, 2};
  m.start_slot = 1234;
  auto d = PrepareMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().epoch, 4u);
  EXPECT_EQ(d.value().ballot, (Ballot{9, 2}));
  EXPECT_EQ(d.value().start_slot, 1234u);
}

TEST(Msg, PromiseRoundTripWithEntries) {
  PromiseMsg m;
  m.epoch = 1;
  m.ballot = Ballot{3, 1};
  m.ok = true;
  m.promised = Ballot{3, 1};
  m.start_slot = 10;
  m.last_committed = 9;
  m.entries.push_back(PromiseEntry{11, Ballot{2, 4}, sample_share()});
  m.entries.push_back(PromiseEntry{12, Ballot{1, 0}, sample_share()});
  auto d = PromiseMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_TRUE(d.value().ok);
  ASSERT_EQ(d.value().entries.size(), 2u);
  EXPECT_EQ(d.value().entries[0].slot, 11u);
  EXPECT_EQ(d.value().entries[0].accepted_ballot, (Ballot{2, 4}));
  EXPECT_TRUE(share_eq(d.value().entries[0].share, sample_share()));
}

TEST(Msg, AcceptRoundTrip) {
  AcceptMsg m;
  m.epoch = 2;
  m.ballot = Ballot{7, 3};
  m.slot = 42;
  m.share = sample_share();
  m.commit_index = 41;
  auto d = AcceptMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().slot, 42u);
  EXPECT_EQ(d.value().commit_index, 41u);
  EXPECT_TRUE(share_eq(d.value().share, m.share));
}

TEST(Msg, AcceptFrameMatchesEncode) {
  // The zero-copy frame (share-sized gap filled in place) must be
  // byte-identical to the plain AcceptMsg::encode wire image.
  AcceptMsg m;
  m.epoch = 2;
  m.ballot = Ballot{7, 3};
  m.slot = 42;
  m.share = sample_share();
  m.commit_index = 41;
  m.trace_id = 99;

  AcceptMsg gap = m;
  gap.share.data.clear();  // frame encoder ignores data, only its size
  Writer w;
  size_t off = encode_accept_frame(w, gap, m.share.data.size());
  Bytes frame = w.take();
  ASSERT_LE(off + m.share.data.size(), frame.size());
  std::copy(m.share.data.begin(), m.share.data.end(), frame.begin() + off);
  EXPECT_EQ(frame, m.encode());

  auto d = AcceptMsg::decode(frame);
  ASSERT_TRUE(d.is_ok());
  EXPECT_TRUE(share_eq(d.value().share, m.share));
  EXPECT_EQ(d.value().trace_id, 99u);
}

TEST(Msg, AcceptedRoundTrip) {
  AcceptedMsg m;
  m.epoch = 0;
  m.ballot = Ballot{5, 5};
  m.slot = 3;
  m.ok = false;
  m.promised = Ballot{6, 1};
  auto d = AcceptedMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_FALSE(d.value().ok);
  EXPECT_EQ(d.value().promised, (Ballot{6, 1}));
}

TEST(Msg, CommitRoundTrip) {
  CommitMsg m;
  m.epoch = 3;
  m.ballot = Ballot{2, 2};
  m.commit_index = 100;
  m.recent.emplace_back(99, ValueId{1, 5});
  m.recent.emplace_back(100, ValueId{2, 6});
  auto d = CommitMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  ASSERT_EQ(d.value().recent.size(), 2u);
  EXPECT_EQ(d.value().recent[1].second, (ValueId{2, 6}));
}

TEST(Msg, HeartbeatAckRoundTrip) {
  HeartbeatAckMsg m;
  m.epoch = 1;
  m.ballot = Ballot{4, 4};
  m.last_logged = 77;
  m.last_committed = 70;
  auto d = HeartbeatAckMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().last_logged, 77u);
}

TEST(Msg, CatchupRoundTrip) {
  CatchupReqMsg req;
  req.epoch = 9;
  req.from_slot = 5;
  req.to_slot = 10;
  auto dreq = CatchupReqMsg::decode(req.encode());
  ASSERT_TRUE(dreq.is_ok());
  EXPECT_EQ(dreq.value().to_slot, 10u);

  CatchupRepMsg rep;
  rep.epoch = 9;
  rep.commit_index = 10;
  rep.entries.push_back(CatchupEntry{5, Ballot{1, 1}, sample_share()});
  GroupConfig cfg = GroupConfig::majority({1, 2, 3});
  cfg.epoch = 9;
  rep.config = cfg;
  auto drep = CatchupRepMsg::decode(rep.encode());
  ASSERT_TRUE(drep.is_ok());
  ASSERT_EQ(drep.value().entries.size(), 1u);
  ASSERT_TRUE(drep.value().config.has_value());
  EXPECT_EQ(drep.value().config->epoch, 9u);
  EXPECT_EQ(drep.value().config->members, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(drep.value().log_start, 1u);  // default: nothing compacted

  rep.log_start = 42;
  auto dtrunc = CatchupRepMsg::decode(rep.encode());
  ASSERT_TRUE(dtrunc.is_ok());
  EXPECT_EQ(dtrunc.value().log_start, 42u);
}

TEST(Msg, SnapshotOfferRoundTrip) {
  SnapshotOfferMsg m;
  m.epoch = 7;
  m.ballot = Ballot{4, 2};
  m.manifest = to_bytes("manifest-wire-image");
  auto d = SnapshotOfferMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().epoch, 7u);
  EXPECT_EQ(d.value().ballot, (Ballot{4, 2}));
  EXPECT_EQ(d.value().manifest, to_bytes("manifest-wire-image"));
}

TEST(Msg, SnapshotFetchReqRoundTrip) {
  SnapshotFetchReqMsg m;
  m.epoch = 3;
  m.checkpoint_id = 900;
  m.share_idx = 2;
  m.offset = 1 << 20;
  auto d = SnapshotFetchReqMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().checkpoint_id, 900u);
  EXPECT_EQ(d.value().share_idx, 2u);
  EXPECT_EQ(d.value().offset, 1u << 20);

  // kAnyShare ("whatever fragment you hold") survives the wire.
  SnapshotFetchReqMsg any;
  any.share_idx = kAnyShare;
  auto dany = SnapshotFetchReqMsg::decode(any.encode());
  ASSERT_TRUE(dany.is_ok());
  EXPECT_EQ(dany.value().share_idx, kAnyShare);
}

TEST(Msg, SnapshotFetchRepRoundTrip) {
  SnapshotFetchRepMsg m;
  m.epoch = 3;
  m.have = true;
  m.checkpoint_id = 900;
  m.share_idx = 1;
  m.offset = 4096;
  m.manifest = to_bytes("man");
  m.data = to_bytes("fragment-chunk-bytes");
  auto d = SnapshotFetchRepMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_TRUE(d.value().have);
  EXPECT_EQ(d.value().checkpoint_id, 900u);
  EXPECT_EQ(d.value().share_idx, 1u);
  EXPECT_EQ(d.value().offset, 4096u);
  EXPECT_EQ(d.value().manifest, to_bytes("man"));
  EXPECT_EQ(d.value().data, to_bytes("fragment-chunk-bytes"));

  // have=false carries the newest-known id so the fetcher can retarget.
  SnapshotFetchRepMsg none;
  none.have = false;
  none.checkpoint_id = 901;
  auto dnone = SnapshotFetchRepMsg::decode(none.encode());
  ASSERT_TRUE(dnone.is_ok());
  EXPECT_FALSE(dnone.value().have);
  EXPECT_EQ(dnone.value().checkpoint_id, 901u);
  EXPECT_TRUE(dnone.value().data.empty());
}

TEST(Msg, FetchShareRoundTrip) {
  FetchShareReqMsg req;
  req.epoch = 1;
  req.slot = 66;
  auto dreq = FetchShareReqMsg::decode(req.encode());
  ASSERT_TRUE(dreq.is_ok());
  EXPECT_EQ(dreq.value().slot, 66u);

  FetchShareRepMsg rep;
  rep.epoch = 1;
  rep.slot = 66;
  rep.have = true;
  rep.committed = true;
  rep.accepted_ballot = Ballot{8, 0};
  rep.share = sample_share();
  auto drep = FetchShareRepMsg::decode(rep.encode());
  ASSERT_TRUE(drep.is_ok());
  EXPECT_TRUE(drep.value().committed);
  EXPECT_TRUE(share_eq(drep.value().share, sample_share()));

  FetchShareRepMsg none;
  none.slot = 66;
  auto dnone = FetchShareRepMsg::decode(none.encode());
  ASSERT_TRUE(dnone.is_ok());
  EXPECT_FALSE(dnone.value().have);
}

// The policy layer threads a code id through shares, configs and fetch
// messages, but rs (the default) must stay byte-identical to the pre-policy
// wire format. These goldens hand-build the pre-policy frames field by field
// so a regression in the gating shows up as a byte diff, not just a failed
// round-trip.
TEST(Msg, RsShareBytesMatchPrePolicyLayout) {
  CodedShare s = sample_share();
  ASSERT_EQ(s.code, ec::CodeId::kRs);
  Writer w;
  encode_share(w, s);

  Writer pre;  // pre-policy layout: plain kind byte, no code anywhere
  pre.u32(s.vid.origin);
  pre.u64(s.vid.seq);
  pre.u8(static_cast<uint8_t>(s.kind));
  pre.varint(s.share_idx);
  pre.varint(s.x);
  pre.varint(s.n);
  pre.varint(s.value_len);
  pre.bytes(s.header);
  pre.bytes(s.data);
  EXPECT_EQ(w.take(), pre.take());
}

TEST(Msg, NonRsShareCodeRoundTrips) {
  for (ec::CodeId code : {ec::CodeId::kLrc, ec::CodeId::kHh}) {
    AcceptMsg m;
    m.ballot = Ballot{1, 1};
    m.slot = 1;
    m.share = sample_share();
    m.share.code = code;
    auto d = AcceptMsg::decode(m.encode());
    ASSERT_TRUE(d.is_ok()) << ec::to_string(code);
    EXPECT_EQ(d.value().share.code, code);
    EXPECT_TRUE(share_eq(d.value().share, m.share));
  }
}

TEST(Msg, BadShareCodeIdRejected) {
  AcceptMsg m;
  m.ballot = Ballot{1, 1};
  m.slot = 1;
  m.share = sample_share();
  m.share.code = static_cast<ec::CodeId>(7);  // unassigned id
  auto st = AcceptMsg::decode(m.encode());
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.status().to_string().find("erasure-code"), std::string::npos);
}

TEST(Msg, RsConfigBytesMatchPrePolicyLayout) {
  auto cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1);
  ASSERT_TRUE(cfg.is_ok());
  GroupConfig c = std::move(cfg).value();
  c.epoch = 3;
  ASSERT_EQ(c.code, ec::CodeId::kRs);
  Writer w;
  encode_config(w, c);

  Writer pre;  // pre-policy layout: plain x varint, no code bits
  pre.varint(c.members.size());
  for (NodeId m : c.members) pre.u32(m);
  pre.varint(static_cast<uint64_t>(c.qr));
  pre.varint(static_cast<uint64_t>(c.qw));
  pre.varint(static_cast<uint64_t>(c.x));
  pre.u32(c.epoch);
  EXPECT_EQ(w.take(), pre.take());
}

TEST(Msg, NonRsConfigRoundTrips) {
  auto cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1);
  ASSERT_TRUE(cfg.is_ok());
  GroupConfig c = std::move(cfg).value();
  c.code = ec::CodeId::kHh;  // MDS: same quorums as rs always validate
  ASSERT_TRUE(c.validate().is_ok());
  Writer w;
  encode_config(w, c);
  Bytes wire = w.take();
  Reader r(wire);
  GroupConfig d;
  ASSERT_TRUE(decode_config(r, d).is_ok());
  EXPECT_EQ(d.code, ec::CodeId::kHh);
  EXPECT_EQ(d.x, c.x);
  EXPECT_EQ(d.members, c.members);
}

TEST(Msg, BadConfigCodeIdRejected) {
  auto cfg = GroupConfig::rs_max_x({1, 2, 3, 4, 5}, 1);
  ASSERT_TRUE(cfg.is_ok());
  GroupConfig c = std::move(cfg).value();
  Writer w;  // hand-encode with an unassigned code id in the x varint
  w.varint(c.members.size());
  for (NodeId m : c.members) w.u32(m);
  w.varint(static_cast<uint64_t>(c.qr));
  w.varint(static_cast<uint64_t>(c.qw));
  w.varint(static_cast<uint64_t>(c.x) | (9ull << 12));
  w.u32(c.epoch);
  Bytes wire = w.take();
  Reader r(wire);
  GroupConfig d;
  EXPECT_FALSE(decode_config(r, d).is_ok());
}

TEST(Msg, FetchShareSubMaskRoundTrip) {
  // sub_mask == 0 (a whole-share fetch) must stay byte-identical to the
  // pre-policy request frame: epoch then slot, nothing else.
  FetchShareReqMsg req;
  req.epoch = 1;
  req.slot = 66;
  Writer pre;
  pre.u32(req.epoch);
  pre.varint(req.slot);
  EXPECT_EQ(req.encode(), pre.take());

  req.sub_mask = 0b101;  // hh repair: sub-shares 0 and 2 only
  auto dreq = FetchShareReqMsg::decode(req.encode());
  ASSERT_TRUE(dreq.is_ok());
  EXPECT_EQ(dreq.value().sub_mask, 0b101u);

  FetchShareRepMsg rep;
  rep.epoch = 1;
  rep.slot = 66;
  rep.have = true;
  rep.share = sample_share();
  rep.share.code = ec::CodeId::kHh;
  rep.sub_mask = 0b10;
  auto drep = FetchShareRepMsg::decode(rep.encode());
  ASSERT_TRUE(drep.is_ok());
  EXPECT_EQ(drep.value().sub_mask, 0b10u);
  EXPECT_EQ(drep.value().share.code, ec::CodeId::kHh);

  rep.sub_mask = 0;  // whole-share reply: no trailing mask byte
  auto dfull = FetchShareRepMsg::decode(rep.encode());
  ASSERT_TRUE(dfull.is_ok());
  EXPECT_EQ(dfull.value().sub_mask, 0u);
}

TEST(Msg, TruncatedMessagesRejected) {
  AcceptMsg m;
  m.ballot = Ballot{1, 1};
  m.slot = 1;
  m.share = sample_share();
  Bytes enc = m.encode();
  for (size_t len : {0ul, 1ul, 5ul, enc.size() - 1}) {
    Bytes cut(enc.begin(), enc.begin() + static_cast<long>(len));
    EXPECT_FALSE(AcceptMsg::decode(cut).is_ok()) << "len=" << len;
  }
}

TEST(Msg, BadCodingMetadataRejected) {
  AcceptMsg m;
  m.ballot = Ballot{1, 1};
  m.slot = 1;
  m.share = sample_share();
  m.share.x = 0;  // invalid
  EXPECT_FALSE(AcceptMsg::decode(m.encode()).is_ok());
  m.share = sample_share();
  m.share.share_idx = 5;  // >= n
  EXPECT_FALSE(AcceptMsg::decode(m.encode()).is_ok());
}

TEST(Msg, RandomBytesNeverCrashDecoder) {
  Rng rng(31337);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.next_below(200));
    rng.fill(junk.data(), junk.size());
    // Any of these may fail, none may crash or over-read (ASAN-clean).
    (void)PrepareMsg::decode(junk);
    (void)PromiseMsg::decode(junk);
    (void)AcceptMsg::decode(junk);
    (void)AcceptedMsg::decode(junk);
    (void)CommitMsg::decode(junk);
    (void)CatchupRepMsg::decode(junk);
    (void)FetchShareRepMsg::decode(junk);
  }
}

}  // namespace
}  // namespace rspaxos::consensus

namespace rspaxos::kv {
namespace {

TEST(KvMsg, CommandHeaderRoundTrip) {
  CommandHeader h;
  h.op = Op::kDelete;
  h.key = "some/key";
  auto d = CommandHeader::decode(h.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().op, Op::kDelete);
  EXPECT_EQ(d.value().key, "some/key");
}

TEST(KvMsg, ClientRequestRoundTrip) {
  ClientRequest r;
  r.req_id = 88;
  r.op = ClientOp::kPut;
  r.key = "k";
  r.value = to_bytes("v-bytes");
  auto d = ClientRequest::decode(r.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().req_id, 88u);
  EXPECT_EQ(to_string(d.value().value), "v-bytes");
}

TEST(KvMsg, ClientReplyRoundTrip) {
  ClientReply r;
  r.req_id = 5;
  r.code = ReplyCode::kNotLeader;
  r.leader_hint = 4097;
  auto d = ClientReply::decode(r.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().code, ReplyCode::kNotLeader);
  EXPECT_EQ(d.value().leader_hint, 4097u);
}

// The resharding piggyback rides as trailing-optional fields: a full reply
// round-trips them, and a legacy-length encoding (no trailer) decodes to the
// zero/none defaults instead of failing.
TEST(KvMsg, ClientReplyRoutingTrailerRoundTrip) {
  ClientReply r;
  r.req_id = 9;
  r.code = ReplyCode::kWrongShard;
  r.leader_hint = 4097;
  r.routing_epoch = 7;
  r.group_hint = 3;
  auto d = ClientReply::decode(r.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().code, ReplyCode::kWrongShard);
  EXPECT_EQ(d.value().routing_epoch, 7u);
  EXPECT_EQ(d.value().group_hint, 3u);

  // A pre-resharding peer stops after the value field. With epoch 0 the
  // trailer is exactly varint(0) + u32 = 5 bytes; chopping it yields the
  // legacy layout, which must decode to the zero/none defaults.
  ClientReply legacy;
  legacy.req_id = 10;
  legacy.code = ReplyCode::kOk;
  legacy.value = to_bytes("v");
  Bytes enc = legacy.encode();
  ASSERT_GT(enc.size(), 5u);
  auto old = ClientReply::decode(BytesView(enc.data(), enc.size() - 5));
  ASSERT_TRUE(old.is_ok());
  EXPECT_EQ(old.value().routing_epoch, 0u);
  EXPECT_EQ(old.value().group_hint, 0xffffffffu);
}

TEST(KvMsg, ShardMapRoundTrip) {
  ShardMap m;
  m.epoch = 42;
  m.num_groups = 3;
  m.shard_group = {0, 1, 2, 1};
  m.migrations.push_back(ShardMigration{3, 1, 2, 0xdeadbeefULL});
  auto d = ShardMap::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().epoch, 42u);
  EXPECT_EQ(d.value().num_groups, 3u);
  EXPECT_EQ(d.value().shard_group, m.shard_group);
  ASSERT_EQ(d.value().migrations.size(), 1u);
  EXPECT_EQ(d.value().migrations[0].shard, 3u);
  EXPECT_EQ(d.value().migrations[0].from_group, 1u);
  EXPECT_EQ(d.value().migrations[0].to_group, 2u);
  EXPECT_EQ(d.value().migrations[0].id, 0xdeadbeefULL);
  EXPECT_NE(d.value().migration_of(3), nullptr);
  EXPECT_EQ(d.value().migration_of(0), nullptr);
}

TEST(KvMsg, MigrateDataRoundTrip) {
  MigrateDataMsg m;
  m.migration_id = 0x1122334455667788ULL;
  m.shard = 6;
  m.seq = 12;
  m.flags = MigrateDataMsg::kFirst | MigrateDataMsg::kFinal;
  m.header = to_bytes("batch-header");
  m.payload = to_bytes("concatenated-values");
  auto d = MigrateDataMsg::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().migration_id, m.migration_id);
  EXPECT_EQ(d.value().shard, 6u);
  EXPECT_EQ(d.value().seq, 12u);
  EXPECT_EQ(d.value().flags, m.flags);
  EXPECT_EQ(d.value().header, m.header);
  EXPECT_EQ(d.value().payload, m.payload);
}

TEST(KvMsg, MigrateAckRoundTripAndBadStatusRejected) {
  MigrateAckMsg a;
  a.migration_id = 77;
  a.seq = 3;
  a.status = MigrateAckMsg::kNotLeader;
  a.leader_hint = 8193;
  auto d = MigrateAckMsg::decode(a.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().migration_id, 77u);
  EXPECT_EQ(d.value().seq, 3u);
  EXPECT_EQ(d.value().status, MigrateAckMsg::kNotLeader);
  EXPECT_EQ(d.value().leader_hint, 8193u);

  a.status = 9;  // out of range on the wire
  EXPECT_FALSE(MigrateAckMsg::decode(a.encode()).is_ok());
}

TEST(KvMsg, MigrateCmdRoundTrip) {
  MigrateCmdMsg c;
  c.shard = 5;
  c.to_group = 2;
  auto d = MigrateCmdMsg::decode(c.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().shard, 5u);
  EXPECT_EQ(d.value().to_group, 2u);
  EXPECT_FALSE(MigrateCmdMsg::decode(BytesView{}).is_ok());
}

TEST(KvMsg, BadOpRejected) {
  ClientRequest r;
  r.req_id = 1;
  r.op = ClientOp::kGet;
  r.key = "k";
  Bytes enc = r.encode();
  enc[8] = 99;  // op byte
  EXPECT_FALSE(ClientRequest::decode(enc).is_ok());
}

}  // namespace
}  // namespace rspaxos::kv
