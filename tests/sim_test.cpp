// Tests for the discrete-event simulator: determinism, event ordering,
// network modeling (latency/jitter/loss/duplication/bandwidth/partitions),
// crash semantics, and the disk model's IOPS/bandwidth behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_disk.h"
#include "sim/sim_network.h"
#include "sim/sim_world.h"

namespace rspaxos {
namespace {

using sim::DiskParams;
using sim::LinkParams;
using sim::SimDisk;
using sim::SimNetwork;
using sim::SimNode;
using sim::SimWorld;

TEST(SimWorld, EventsRunInTimeOrder) {
  SimWorld w;
  std::vector<int> order;
  w.schedule(300, [&] { order.push_back(3); });
  w.schedule(100, [&] { order.push_back(1); });
  w.schedule(200, [&] { order.push_back(2); });
  w.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(w.now(), 300);
}

TEST(SimWorld, TiesBreakByInsertionOrder) {
  SimWorld w;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    w.schedule(50, [&order, i] { order.push_back(i); });
  }
  w.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimWorld, CancelPreventsExecution) {
  SimWorld w;
  bool ran = false;
  uint64_t id = w.schedule(100, [&] { ran = true; });
  EXPECT_TRUE(w.cancel(id));
  EXPECT_FALSE(w.cancel(id));  // second cancel is a no-op
  w.run_to_completion();
  EXPECT_FALSE(ran);
}

TEST(SimWorld, RunUntilAdvancesTimeEvenWhenIdle) {
  SimWorld w;
  w.run_until(12345);
  EXPECT_EQ(w.now(), 12345);
}

TEST(SimWorld, NestedSchedulingWorks) {
  SimWorld w;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) w.schedule(10, recur);
  };
  w.schedule(0, recur);
  w.run_to_completion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(w.now(), 40);
}

TEST(SimWorld, RunForIsRelative) {
  SimWorld w;
  int count = 0;
  w.schedule(100, [&] { count++; });
  w.schedule(300, [&] { count++; });
  w.run_for(150);
  EXPECT_EQ(count, 1);
  w.run_for(200);
  EXPECT_EQ(count, 2);
}

// A trivial recording handler.
struct Recorder final : MessageHandler {
  struct Rx {
    NodeId from;
    MsgType type;
    Bytes payload;
    TimeMicros at;
  };
  SimWorld* world;
  std::vector<Rx> received;
  explicit Recorder(SimWorld* w) : world(w) {}
  void on_message(NodeId from, MsgType type, BytesView payload) override {
    received.push_back(Rx{from, type, Bytes(payload.begin(), payload.end()), world->now()});
  }
};

TEST(SimNetwork, DeliversWithLatency) {
  SimWorld w(1);
  SimNetwork net(&w);
  net.set_default_link(LinkParams{1000, 0, 0.0, 0.0, 1e12});
  Recorder rec(&w);
  net.node(2)->set_handler(&rec);
  net.node(1)->send(2, MsgType::kTestPing, to_bytes("hi"));
  w.run_to_completion();
  ASSERT_EQ(rec.received.size(), 1u);
  EXPECT_EQ(rec.received[0].from, 1u);
  EXPECT_EQ(to_string(rec.received[0].payload), "hi");
  EXPECT_EQ(rec.received[0].at, 1000);
}

TEST(SimNetwork, BandwidthSerializesLargeMessages) {
  SimWorld w(1);
  SimNetwork net(&w);
  // 1 MB at 8 Mbps = 1 second of serialization; zero propagation.
  net.set_default_link(LinkParams{0, 0, 0.0, 0.0, 8e6});
  Recorder rec(&w);
  net.node(2)->set_handler(&rec);
  net.node(1)->send(2, MsgType::kTestPing, Bytes(1'000'000, 0));
  w.run_to_completion();
  ASSERT_EQ(rec.received.size(), 1u);
  EXPECT_EQ(rec.received[0].at, 1'000'000);
}

TEST(SimNetwork, LinkIsFifoUnderBandwidth) {
  SimWorld w(1);
  SimNetwork net(&w);
  net.set_default_link(LinkParams{0, 0, 0.0, 0.0, 8e6});  // 1 B/us
  Recorder rec(&w);
  net.node(2)->set_handler(&rec);
  net.node(1)->send(2, MsgType::kTestPing, Bytes(100, 1));  // done at t=100
  net.node(1)->send(2, MsgType::kTestPong, Bytes(10, 2));   // queued: t=110
  w.run_to_completion();
  ASSERT_EQ(rec.received.size(), 2u);
  EXPECT_EQ(rec.received[0].at, 100);
  EXPECT_EQ(rec.received[1].at, 110);
}

TEST(SimNetwork, DropProbabilityLosesMessages) {
  SimWorld w(42);
  SimNetwork net(&w);
  net.set_default_link(LinkParams{10, 0, 0.5, 0.0, 1e12});
  Recorder rec(&w);
  net.node(2)->set_handler(&rec);
  for (int i = 0; i < 1000; ++i) net.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_GT(rec.received.size(), 300u);
  EXPECT_LT(rec.received.size(), 700u);
}

TEST(SimNetwork, DuplicationDeliversTwice) {
  SimWorld w(7);
  SimNetwork net(&w);
  net.set_default_link(LinkParams{10, 0, 0.0, 1.0, 1e12});  // always duplicate
  Recorder rec(&w);
  net.node(2)->set_handler(&rec);
  net.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_EQ(rec.received.size(), 2u);
}

TEST(SimNetwork, PartitionBlocksBothDirections) {
  SimWorld w(1);
  SimNetwork net(&w);
  Recorder r1(&w), r2(&w);
  net.node(1)->set_handler(&r1);
  net.node(2)->set_handler(&r2);
  net.partition({1}, {2});
  net.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  net.node(2)->send(1, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_TRUE(r1.received.empty());
  EXPECT_TRUE(r2.received.empty());
  net.heal_partitions();
  net.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_EQ(r2.received.size(), 1u);
}

TEST(SimNetwork, CrashedNodeNeitherSendsNorReceives) {
  SimWorld w(1);
  SimNetwork net(&w);
  Recorder r2(&w);
  net.node(2)->set_handler(&r2);
  net.crash(1);
  net.node(1)->send(2, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_TRUE(r2.received.empty());

  Recorder r1(&w);
  net.node(1)->set_handler(&r1);
  net.node(2)->send(1, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_TRUE(r1.received.empty());  // crashed receiver drops

  net.restart(1);
  net.node(2)->send(1, MsgType::kTestPing, Bytes{1});
  w.run_to_completion();
  EXPECT_EQ(r1.received.size(), 1u);
}

TEST(SimNetwork, CrashDiscardsPendingTimers) {
  SimWorld w(1);
  SimNetwork net(&w);
  bool fired = false;
  net.node(1)->set_timer(1000, [&] { fired = true; });
  net.crash(1);
  net.restart(1);  // new incarnation: old timer must not fire
  w.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    SimWorld w(seed);
    SimNetwork net(&w);
    net.set_default_link(LinkParams{100, 50, 0.2, 0.1, 1e9});
    Recorder rec(&w);
    net.node(2)->set_handler(&rec);
    for (int i = 0; i < 200; ++i) {
      net.node(1)->send(2, MsgType::kTestPing, Bytes{static_cast<uint8_t>(i)});
    }
    w.run_to_completion();
    std::vector<std::pair<TimeMicros, uint8_t>> trace;
    for (const auto& r : rec.received) trace.emplace_back(r.at, r.payload[0]);
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SimNetwork, BytesSentAccounting) {
  SimWorld w(1);
  SimNetwork net(&w);
  Recorder rec(&w);
  net.node(2)->set_handler(&rec);
  net.node(1)->send(2, MsgType::kTestPing, Bytes(100, 0));
  net.node(1)->send(2, MsgType::kTestPing, Bytes(28, 0));
  w.run_to_completion();
  EXPECT_EQ(net.node(1)->bytes_sent(), 128u);
  EXPECT_EQ(net.total_bytes_sent(), 128u);
}

TEST(SimDisk, IopsBoundForSmallWrites) {
  SimWorld w(1);
  SimDisk disk(&w, DiskParams{100, 1e9});  // 100 IOPS -> 10 ms per op
  std::vector<TimeMicros> done;
  for (int i = 0; i < 3; ++i) {
    disk.write(16, [&w, &done] { done.push_back(w.now()); });
  }
  w.run_to_completion();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 10'000);
  EXPECT_EQ(done[1], 20'000);  // FIFO queueing
  EXPECT_EQ(done[2], 30'000);
}

TEST(SimDisk, BandwidthBoundForLargeWrites) {
  SimWorld w(1);
  SimDisk disk(&w, DiskParams{1e6, 1e8});  // negligible op cost, 100 MB/s
  TimeMicros done = 0;
  disk.write(100'000'000, [&] { done = w.now(); });  // 100 MB -> 1 s
  w.run_to_completion();
  EXPECT_NEAR(static_cast<double>(done), 1e6, 1e4);
}

TEST(SimDisk, HddSlowerThanSsdForSmallWrites) {
  SimWorld w1(1), w2(1);
  SimDisk hdd(&w1, DiskParams::hdd());
  SimDisk ssd(&w2, DiskParams::ssd());
  TimeMicros t_hdd = 0, t_ssd = 0;
  for (int i = 0; i < 10; ++i) {
    hdd.write(4096, [&] { t_hdd = w1.now(); });
    ssd.write(4096, [&] { t_ssd = w2.now(); });
  }
  w1.run_to_completion();
  w2.run_to_completion();
  EXPECT_GT(t_hdd, 10 * t_ssd);
}

}  // namespace
}  // namespace rspaxos
