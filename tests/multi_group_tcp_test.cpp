// Multi-group node host over the real stack: one TcpCluster machine = one
// listen port + one I/O thread (TcpHost), one fsync'ing FileWal and one
// snapshot root, serving a replica of every Paxos group. Exercises the
// frame-envelope group demux end to end, and the shared log's per-group
// truncation: one group checkpoints and compacts while another keeps
// committing through the same file.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>

#include "kv/client.h"
#include "node/tcp_cluster.h"

namespace rspaxos {
namespace {

constexpr int kServers = 5;
constexpr uint32_t kGroups = 4;

template <typename Pred>
bool poll_until(Pred done, int timeout_ms = 60000) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return done();
}

/// The i-th key routed to shard `group` under the current hash contract.
std::string key_in_group(uint32_t group, int i) {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "mg/" + std::to_string(n);
    if (kv::shard_of(key, kGroups) == group && found++ == i) return key;
  }
}

Bytes value_for(int i) { return Bytes(1024, static_cast<uint8_t>('a' + (i % 26))); }

TEST(MultiGroupTcp, OneHostPerServerServesAllGroupsThroughSharedWal) {
  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_mg_tcp_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  node::TcpClusterOptions opts;
  opts.num_servers = kServers;
  opts.num_groups = kGroups;
  opts.f = 1;  // theta(3,5) per group
  opts.data_dir = dir.string();
  opts.replica.heartbeat_interval = 30 * kMillis;
  opts.replica.election_timeout_min = 300 * kMillis;
  opts.replica.election_timeout_max = 600 * kMillis;
  opts.replica.lease_duration = 250 * kMillis;
  opts.replica.checkpoint_interval_slots = 16;

  auto started = node::TcpCluster::start(opts);
  ASSERT_TRUE(started.is_ok()) << started.status().to_string();
  auto cluster = std::move(started).value();

  // The tentpole resource contract: per server exactly one event loop /
  // I/O thread (every group endpoint shares it), one multiplexed WAL, one
  // snapshot root with a slot per group.
  for (int s = 0; s < kServers; ++s) {
    ASSERT_NE(cluster->endpoint(s, 0), nullptr);
    for (uint32_t g = 1; g < kGroups; ++g) {
      ASSERT_NE(cluster->endpoint(s, g), nullptr);
      EXPECT_EQ(&cluster->endpoint(s, g)->loop(), &cluster->endpoint(s, 0)->loop())
          << "server " << s << " group " << g << " must share the host loop";
    }
    EXPECT_EQ(cluster->wal(s).num_groups(), kGroups);
    EXPECT_EQ(cluster->snap_store(s).num_groups(), kGroups);
    EXPECT_EQ(cluster->host(s).num_groups(), kGroups);
  }

  ASSERT_TRUE(poll_until([&] {
    for (uint32_t g = 0; g < kGroups; ++g) {
      if (cluster->leader_server_of(g) < 0) return false;
    }
    return true;
  })) << "not every group elected a leader";

  auto cnode = cluster->start_client();
  ASSERT_TRUE(cnode.is_ok()) << cnode.status().to_string();
  kv::KvClient::Options copts;
  copts.request_timeout = 2000 * kMillis;
  kv::KvClient client(cnode.value(), cluster->routing(), copts);
  cnode.value()->loop().post([&] { cnode.value()->set_handler(&client); });

  auto put = [&](const std::string& key, Bytes value) {
    std::promise<Status> done;
    auto fut = done.get_future();
    cnode.value()->loop().post([&, key] {
      client.put(key, std::move(value), [&](Status s) { done.set_value(s); });
    });
    if (fut.wait_for(std::chrono::seconds(20)) != std::future_status::ready) {
      return Status::timeout("put " + key);
    }
    return fut.get();
  };
  auto get = [&](const std::string& key) -> StatusOr<Bytes> {
    std::promise<StatusOr<Bytes>> done;
    auto fut = done.get_future();
    cnode.value()->loop().post([&, key] {
      client.get(key, [&](StatusOr<Bytes> r) { done.set_value(std::move(r)); });
    });
    if (fut.wait_for(std::chrono::seconds(20)) != std::future_status::ready) {
      return Status::timeout("get " + key);
    }
    return fut.get();
  };

  // Drive one group past its checkpoint interval while a second group's
  // commits interleave through the same five log files.
  const uint32_t kHot = 0, kCold = 1;
  const int kHotKeys = 40;
  int cold_written = 0;
  for (int i = 0; i < kHotKeys; ++i) {
    ASSERT_TRUE(put(key_in_group(kHot, i), value_for(i)).is_ok()) << "hot " << i;
    if (i % 8 == 7) {
      ASSERT_TRUE(put(key_in_group(kCold, cold_written), value_for(cold_written)).is_ok());
      cold_written++;
    }
  }

  // Every server's hot-group view compacts (FileWal counters are atomics,
  // safe to poll from here); the cold group shares the same file but never
  // checkpointed, so its view must reclaim nothing.
  ASSERT_TRUE(poll_until([&] {
    for (int s = 0; s < kServers; ++s) {
      if (cluster->wal(s).group_truncated_bytes(kHot) == 0) return false;
    }
    return true;
  })) << "hot group never compacted on every server";
  for (int s = 0; s < kServers; ++s) {
    EXPECT_EQ(cluster->wal(s).group_truncated_bytes(kCold), 0u) << "server " << s;
    // The hot group's fragment landed in the server's per-group snapshot slot.
    EXPECT_GT(cluster->snap_store(s).group(kHot)->stored_bytes(), 0u) << "server " << s;
  }

  // The cold group keeps committing after its neighbor truncated the log
  // they share.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(put(key_in_group(kCold, cold_written), value_for(cold_written)).is_ok());
    cold_written++;
  }
  for (int i : {0, 7, 19, kHotKeys - 1}) {
    auto got = get(key_in_group(kHot, i));
    ASSERT_TRUE(got.is_ok()) << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i));
  }
  for (int i = 0; i < cold_written; ++i) {
    auto got = get(key_in_group(kCold, i));
    ASSERT_TRUE(got.is_ok()) << i << ": " << got.status().to_string();
    EXPECT_EQ(got.value(), value_for(i));
  }

  // Flush amortization across shards: both groups' records went through one
  // group-commit stream, so the machine's fsync count is far below one per
  // committed record.
  uint64_t flushes = 0, records = 0;
  for (int s = 0; s < kServers; ++s) {
    flushes += cluster->wal(s).flush_ops();
    records += cluster->wal(s).bytes_flushed() > 0 ? 1 : 0;
  }
  EXPECT_GT(flushes, 0u);
  EXPECT_EQ(records, static_cast<uint64_t>(kServers));

  cluster.reset();  // joins I/O threads before the WAL files are removed
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rspaxos
