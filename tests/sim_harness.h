// Shared test harness: binds single-decree acceptors/proposers to the
// simulated network so protocol tests can script adversarial schedules.
#pragma once

#include <memory>
#include <vector>

#include "consensus/single.h"
#include "sim/sim_network.h"
#include "sim/sim_world.h"
#include "storage/wal.h"

namespace rspaxos::consensus::testing {

/// Hosts one SingleAcceptor on a sim node: decodes prepare/accept traffic,
/// runs the acceptor, sends replies. Crash/restart emulates §4.5 recovery
/// (volatile state lost; WAL replayed).
class AcceptorHost final : public MessageHandler {
 public:
  AcceptorHost(sim::SimNetwork* net, NodeId id)
      : net_(net), node_(net->node(id)), acceptor_(std::make_unique<SingleAcceptor>(&wal_)) {
    node_->set_handler(this);
  }

  void on_message(NodeId from, MsgType type, BytesView payload) override {
    switch (type) {
      case MsgType::kPrepare: {
        auto m = PrepareMsg::decode(payload);
        if (!m.is_ok()) return;
        acceptor_->on_prepare(m.value(), [this, from](PromiseMsg rep) {
          node_->send(from, MsgType::kPromise, rep.encode());
        });
        return;
      }
      case MsgType::kAccept: {
        auto m = AcceptMsg::decode(payload);
        if (!m.is_ok()) return;
        acceptor_->on_accept(m.value(), [this, from](AcceptedMsg rep) {
          node_->send(from, MsgType::kAccepted, rep.encode());
        });
        return;
      }
      default:
        return;
    }
  }

  /// Crash: lose volatile state (keep the WAL), drop off the network.
  void crash() {
    net_->crash(node_->id());
    acceptor_.reset();
  }

  /// Restart: §4.5 — rebuild promised/accepted state from the durable log.
  void restart() {
    net_->restart(node_->id());
    acceptor_ = std::make_unique<SingleAcceptor>(&wal_);
    acceptor_->restore_from_wal();
  }

  SingleAcceptor* acceptor() { return acceptor_.get(); }
  storage::MemWal& wal() { return wal_; }
  sim::SimNode* node() { return node_; }

 private:
  sim::SimNetwork* net_;
  sim::SimNode* node_;
  storage::MemWal wal_;
  std::unique_ptr<SingleAcceptor> acceptor_;
};

/// Hosts a SingleProposer on a sim node.
class ProposerHost final : public MessageHandler {
 public:
  ProposerHost(sim::SimNetwork* net, NodeId id, GroupConfig cfg,
               SingleProposer::Options opts = {})
      : node_(net->node(id)), proposer_(node_, std::move(cfg), opts) {
    node_->set_handler(this);
  }

  void on_message(NodeId from, MsgType type, BytesView payload) override {
    proposer_.on_message(from, type, payload);
  }

  SingleProposer& proposer() { return proposer_; }
  sim::SimNode* node() { return node_; }

 private:
  sim::SimNode* node_;
  SingleProposer proposer_;
};

}  // namespace rspaxos::consensus::testing
