file(REMOVE_RECURSE
  "CMakeFiles/kv_nemesis_test.dir/kv_nemesis_test.cpp.o"
  "CMakeFiles/kv_nemesis_test.dir/kv_nemesis_test.cpp.o.d"
  "kv_nemesis_test"
  "kv_nemesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_nemesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
