# Empty compiler generated dependencies file for kv_nemesis_test.
# This may be replaced when dependencies are built.
