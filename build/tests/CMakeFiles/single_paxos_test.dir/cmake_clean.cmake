file(REMOVE_RECURSE
  "CMakeFiles/single_paxos_test.dir/single_paxos_test.cpp.o"
  "CMakeFiles/single_paxos_test.dir/single_paxos_test.cpp.o.d"
  "single_paxos_test"
  "single_paxos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_paxos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
