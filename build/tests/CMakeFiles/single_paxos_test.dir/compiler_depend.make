# Empty compiler generated dependencies file for single_paxos_test.
# This may be replaced when dependencies are built.
