file(REMOVE_RECURSE
  "CMakeFiles/rs_codec_tool.dir/rs_codec_tool.cpp.o"
  "CMakeFiles/rs_codec_tool.dir/rs_codec_tool.cpp.o.d"
  "rs_codec_tool"
  "rs_codec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_codec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
