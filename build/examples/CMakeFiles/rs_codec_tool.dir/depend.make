# Empty dependencies file for rs_codec_tool.
# This may be replaced when dependencies are built.
