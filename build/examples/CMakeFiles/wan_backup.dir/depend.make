# Empty dependencies file for wan_backup.
# This may be replaced when dependencies are built.
