file(REMOVE_RECURSE
  "CMakeFiles/wan_backup.dir/wan_backup.cpp.o"
  "CMakeFiles/wan_backup.dir/wan_backup.cpp.o.d"
  "wan_backup"
  "wan_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
