# Empty dependencies file for bench_cpu_cost.
# This may be replaced when dependencies are built.
