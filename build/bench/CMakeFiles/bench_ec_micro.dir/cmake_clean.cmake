file(REMOVE_RECURSE
  "CMakeFiles/bench_ec_micro.dir/bench_ec_micro.cpp.o"
  "CMakeFiles/bench_ec_micro.dir/bench_ec_micro.cpp.o.d"
  "bench_ec_micro"
  "bench_ec_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ec_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
