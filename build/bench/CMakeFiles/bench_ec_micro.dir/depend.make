# Empty dependencies file for bench_ec_micro.
# This may be replaced when dependencies are built.
