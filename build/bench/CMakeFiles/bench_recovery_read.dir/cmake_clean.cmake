file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_read.dir/bench_recovery_read.cpp.o"
  "CMakeFiles/bench_recovery_read.dir/bench_recovery_read.cpp.o.d"
  "bench_recovery_read"
  "bench_recovery_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
