# Empty dependencies file for bench_recovery_read.
# This may be replaced when dependencies are built.
