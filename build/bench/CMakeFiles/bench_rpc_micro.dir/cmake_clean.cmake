file(REMOVE_RECURSE
  "CMakeFiles/bench_rpc_micro.dir/bench_rpc_micro.cpp.o"
  "CMakeFiles/bench_rpc_micro.dir/bench_rpc_micro.cpp.o.d"
  "bench_rpc_micro"
  "bench_rpc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
