file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_consensus.dir/config.cpp.o"
  "CMakeFiles/rspaxos_consensus.dir/config.cpp.o.d"
  "CMakeFiles/rspaxos_consensus.dir/msg.cpp.o"
  "CMakeFiles/rspaxos_consensus.dir/msg.cpp.o.d"
  "CMakeFiles/rspaxos_consensus.dir/replica.cpp.o"
  "CMakeFiles/rspaxos_consensus.dir/replica.cpp.o.d"
  "CMakeFiles/rspaxos_consensus.dir/single.cpp.o"
  "CMakeFiles/rspaxos_consensus.dir/single.cpp.o.d"
  "CMakeFiles/rspaxos_consensus.dir/view.cpp.o"
  "CMakeFiles/rspaxos_consensus.dir/view.cpp.o.d"
  "librspaxos_consensus.a"
  "librspaxos_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
