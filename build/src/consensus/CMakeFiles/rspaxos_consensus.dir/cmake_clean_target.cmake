file(REMOVE_RECURSE
  "librspaxos_consensus.a"
)
