# Empty compiler generated dependencies file for rspaxos_consensus.
# This may be replaced when dependencies are built.
