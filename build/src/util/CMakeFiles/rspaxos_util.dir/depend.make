# Empty dependencies file for rspaxos_util.
# This may be replaced when dependencies are built.
