file(REMOVE_RECURSE
  "librspaxos_util.a"
)
