file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_util.dir/crc32.cpp.o"
  "CMakeFiles/rspaxos_util.dir/crc32.cpp.o.d"
  "CMakeFiles/rspaxos_util.dir/event_loop.cpp.o"
  "CMakeFiles/rspaxos_util.dir/event_loop.cpp.o.d"
  "CMakeFiles/rspaxos_util.dir/histogram.cpp.o"
  "CMakeFiles/rspaxos_util.dir/histogram.cpp.o.d"
  "CMakeFiles/rspaxos_util.dir/logging.cpp.o"
  "CMakeFiles/rspaxos_util.dir/logging.cpp.o.d"
  "CMakeFiles/rspaxos_util.dir/marshal.cpp.o"
  "CMakeFiles/rspaxos_util.dir/marshal.cpp.o.d"
  "librspaxos_util.a"
  "librspaxos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
