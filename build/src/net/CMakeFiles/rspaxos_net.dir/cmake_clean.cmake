file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_net.dir/local_transport.cpp.o"
  "CMakeFiles/rspaxos_net.dir/local_transport.cpp.o.d"
  "CMakeFiles/rspaxos_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/rspaxos_net.dir/tcp_transport.cpp.o.d"
  "librspaxos_net.a"
  "librspaxos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
