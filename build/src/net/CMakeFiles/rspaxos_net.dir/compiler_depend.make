# Empty compiler generated dependencies file for rspaxos_net.
# This may be replaced when dependencies are built.
