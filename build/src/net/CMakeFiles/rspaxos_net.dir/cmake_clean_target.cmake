file(REMOVE_RECURSE
  "librspaxos_net.a"
)
