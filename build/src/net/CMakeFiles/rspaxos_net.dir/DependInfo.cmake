
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/local_transport.cpp" "src/net/CMakeFiles/rspaxos_net.dir/local_transport.cpp.o" "gcc" "src/net/CMakeFiles/rspaxos_net.dir/local_transport.cpp.o.d"
  "/root/repo/src/net/tcp_transport.cpp" "src/net/CMakeFiles/rspaxos_net.dir/tcp_transport.cpp.o" "gcc" "src/net/CMakeFiles/rspaxos_net.dir/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rspaxos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
