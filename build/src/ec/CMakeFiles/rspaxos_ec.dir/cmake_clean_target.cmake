file(REMOVE_RECURSE
  "librspaxos_ec.a"
)
