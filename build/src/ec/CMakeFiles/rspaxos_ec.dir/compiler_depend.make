# Empty compiler generated dependencies file for rspaxos_ec.
# This may be replaced when dependencies are built.
