file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_ec.dir/gf256.cpp.o"
  "CMakeFiles/rspaxos_ec.dir/gf256.cpp.o.d"
  "CMakeFiles/rspaxos_ec.dir/matrix.cpp.o"
  "CMakeFiles/rspaxos_ec.dir/matrix.cpp.o.d"
  "CMakeFiles/rspaxos_ec.dir/rs_code.cpp.o"
  "CMakeFiles/rspaxos_ec.dir/rs_code.cpp.o.d"
  "librspaxos_ec.a"
  "librspaxos_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
