# Empty compiler generated dependencies file for rspaxos_kv.
# This may be replaced when dependencies are built.
