file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_kv.dir/client.cpp.o"
  "CMakeFiles/rspaxos_kv.dir/client.cpp.o.d"
  "CMakeFiles/rspaxos_kv.dir/cluster.cpp.o"
  "CMakeFiles/rspaxos_kv.dir/cluster.cpp.o.d"
  "CMakeFiles/rspaxos_kv.dir/command.cpp.o"
  "CMakeFiles/rspaxos_kv.dir/command.cpp.o.d"
  "CMakeFiles/rspaxos_kv.dir/server.cpp.o"
  "CMakeFiles/rspaxos_kv.dir/server.cpp.o.d"
  "CMakeFiles/rspaxos_kv.dir/store.cpp.o"
  "CMakeFiles/rspaxos_kv.dir/store.cpp.o.d"
  "librspaxos_kv.a"
  "librspaxos_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
