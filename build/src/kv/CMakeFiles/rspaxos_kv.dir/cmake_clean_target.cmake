file(REMOVE_RECURSE
  "librspaxos_kv.a"
)
