
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sim_disk.cpp" "src/sim/CMakeFiles/rspaxos_sim.dir/sim_disk.cpp.o" "gcc" "src/sim/CMakeFiles/rspaxos_sim.dir/sim_disk.cpp.o.d"
  "/root/repo/src/sim/sim_network.cpp" "src/sim/CMakeFiles/rspaxos_sim.dir/sim_network.cpp.o" "gcc" "src/sim/CMakeFiles/rspaxos_sim.dir/sim_network.cpp.o.d"
  "/root/repo/src/sim/sim_world.cpp" "src/sim/CMakeFiles/rspaxos_sim.dir/sim_world.cpp.o" "gcc" "src/sim/CMakeFiles/rspaxos_sim.dir/sim_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rspaxos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rspaxos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
