# Empty compiler generated dependencies file for rspaxos_sim.
# This may be replaced when dependencies are built.
