file(REMOVE_RECURSE
  "librspaxos_sim.a"
)
