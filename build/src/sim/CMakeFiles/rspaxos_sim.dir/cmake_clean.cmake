file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_sim.dir/sim_disk.cpp.o"
  "CMakeFiles/rspaxos_sim.dir/sim_disk.cpp.o.d"
  "CMakeFiles/rspaxos_sim.dir/sim_network.cpp.o"
  "CMakeFiles/rspaxos_sim.dir/sim_network.cpp.o.d"
  "CMakeFiles/rspaxos_sim.dir/sim_world.cpp.o"
  "CMakeFiles/rspaxos_sim.dir/sim_world.cpp.o.d"
  "librspaxos_sim.a"
  "librspaxos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
