
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/file_wal.cpp" "src/storage/CMakeFiles/rspaxos_storage.dir/file_wal.cpp.o" "gcc" "src/storage/CMakeFiles/rspaxos_storage.dir/file_wal.cpp.o.d"
  "/root/repo/src/storage/sim_wal.cpp" "src/storage/CMakeFiles/rspaxos_storage.dir/sim_wal.cpp.o" "gcc" "src/storage/CMakeFiles/rspaxos_storage.dir/sim_wal.cpp.o.d"
  "/root/repo/src/storage/wal.cpp" "src/storage/CMakeFiles/rspaxos_storage.dir/wal.cpp.o" "gcc" "src/storage/CMakeFiles/rspaxos_storage.dir/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rspaxos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rspaxos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rspaxos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
