file(REMOVE_RECURSE
  "CMakeFiles/rspaxos_storage.dir/file_wal.cpp.o"
  "CMakeFiles/rspaxos_storage.dir/file_wal.cpp.o.d"
  "CMakeFiles/rspaxos_storage.dir/sim_wal.cpp.o"
  "CMakeFiles/rspaxos_storage.dir/sim_wal.cpp.o.d"
  "CMakeFiles/rspaxos_storage.dir/wal.cpp.o"
  "CMakeFiles/rspaxos_storage.dir/wal.cpp.o.d"
  "librspaxos_storage.a"
  "librspaxos_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rspaxos_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
