file(REMOVE_RECURSE
  "librspaxos_storage.a"
)
