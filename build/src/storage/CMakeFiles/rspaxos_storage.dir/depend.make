# Empty dependencies file for rspaxos_storage.
# This may be replaced when dependencies are built.
