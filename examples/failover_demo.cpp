// Scenario: a metadata/lock service (Chubby-style, the paper's §1
// motivation) that keeps serving reads and writes while machines die.
// Narrates a full §6.4-style fail-over: crash the leader, watch a new one
// win the election, observe the recovery read that rebuilds its value cache,
// then reconfigure the view to shed the dead member (§4.6) and survive a
// second crash.
//
// Build & run:   ./build/examples/failover_demo
#include <cstdio>

#include "kv/cluster.h"

using namespace rspaxos;

namespace {

template <typename Pred>
bool run_until(sim::SimWorld& world, Pred done, DurationMicros max = 60 * kSeconds) {
  TimeMicros deadline = world.now() + max;
  while (!done() && world.now() < deadline) world.run_for(5 * kMillis);
  return done();
}

}  // namespace

int main() {
  std::printf("Fail-over demo — RS-Paxos lock/metadata service, N=5, F=1\n\n");
  sim::SimWorld world(77);
  kv::SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = true;
  opts.f = 1;
  opts.replica.heartbeat_interval = 30 * kMillis;
  opts.replica.election_timeout_min = 250 * kMillis;
  opts.replica.election_timeout_max = 450 * kMillis;
  opts.replica.lease_duration = 200 * kMillis;
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();
  auto client = cluster.make_client(0);

  int leader = cluster.leader_server_of(0);
  std::printf("t=%-6.2fs server %d elected leader\n", world.now() / 1e6, leader);

  bool ok = false;
  client->put("locks/build-farm", to_bytes("owner=ci-runner-42;ttl=30s"), [&](Status s) {
    ok = s.is_ok();
  });
  run_until(world, [&] { return ok; });
  std::printf("t=%-6.2fs lock record committed through theta(3,5)\n", world.now() / 1e6);
  // Let the bundled commit notifications reach the followers, so they apply
  // their coded shares (tagged incomplete) before the leader dies — that is
  // what makes the post-failover read a genuine §4.4 recovery read.
  world.run_for(1 * kSeconds);

  // ---- crash 1: the leader dies ------------------------------------------
  std::printf("\nt=%-6.2fs *** crashing leader (server %d) ***\n", world.now() / 1e6,
              leader);
  cluster.crash_server(leader);
  int old_leader = leader;
  run_until(world, [&] {
    int l = cluster.leader_server_of(0);
    return l >= 0 && l != old_leader;
  });
  leader = cluster.leader_server_of(0);
  std::printf("t=%-6.2fs server %d took over after the lease expired\n",
              world.now() / 1e6, leader);

  // The new leader only holds a coded share of the lock record; the read
  // below forces a §4.4 recovery read (gather >= X shares, decode, cache).
  std::optional<std::string> got;
  client->get("locks/build-farm", [&](StatusOr<Bytes> r) {
    if (r.is_ok()) got = rspaxos::to_string(r.value());
  });
  run_until(world, [&] { return got.has_value(); });
  std::printf("t=%-6.2fs read after failover -> \"%s\"\n", world.now() / 1e6,
              got->c_str());
  std::printf("         (recovery reads on new leader: %llu)\n",
              static_cast<unsigned long long>(
                  cluster.server(leader, 0)->stats().recovery_reads));

  // ---- view change: drop the dead member (§4.6) --------------------------
  auto& rep = cluster.server(leader, 0)->replica();
  std::vector<NodeId> members;
  for (int s = 0; s < 5; ++s) {
    if (s != old_leader) members.push_back(kv::endpoint_id(s, 0));
  }
  auto newc = consensus::GroupConfig::rs_max_x(members, 1, rep.config().epoch + 1);
  bool reconfigured = false;
  rep.propose_config(newc.value(), [&](StatusOr<consensus::Slot>) { reconfigured = true; });
  run_until(world, [&] { return reconfigured; });
  std::printf("\nt=%-6.2fs view change committed: %s\n", world.now() / 1e6,
              rep.config().to_string().c_str());
  std::printf("         re-encode plan old->new: %s (paper's Q' >= X rule)\n",
              consensus::to_string(consensus::plan_reencode(
                  consensus::GroupConfig::rs_max_x(
                      {kv::endpoint_id(0, 0), kv::endpoint_id(1, 0), kv::endpoint_id(2, 0),
                       kv::endpoint_id(3, 0), kv::endpoint_id(4, 0)},
                      1)
                      .value(),
                  rep.config())));

  // ---- crash 2: now tolerated thanks to the reconfiguration --------------
  int second_victim = -1;
  for (int s = 0; s < 5; ++s) {
    if (s != old_leader && s != leader) {
      second_victim = s;
      break;
    }
  }
  std::printf("\nt=%-6.2fs *** crashing follower (server %d) ***\n", world.now() / 1e6,
              second_victim);
  cluster.crash_server(second_victim);

  ok = false;
  client->put("locks/build-farm", to_bytes("owner=ci-runner-43;ttl=30s"),
              [&](Status s) { ok = s.is_ok(); });
  run_until(world, [&] { return ok; });
  std::printf("t=%-6.2fs write still commits with 3 of the original 5 alive\n",
              world.now() / 1e6);

  got.reset();
  client->get("locks/build-farm", [&](StatusOr<Bytes> r) {
    if (r.is_ok()) got = rspaxos::to_string(r.value());
  });
  run_until(world, [&] { return got.has_value(); });
  std::printf("t=%-6.2fs final read -> \"%s\"\n", world.now() / 1e6, got->c_str());
  std::printf("\nTwo uncorrelated failures absorbed: F=1 per view, with a view\n"
              "change between them — exactly the paper's §6.1 availability claim.\n");
  return 0;
}
