// Standalone erasure-codec utility: exercises the ec library on real files,
// the way the paper's Zfec dependency would be used outside the consensus
// stack (§5). Splits a file into n share files (any m reconstruct), or joins
// shares back into the original.
//
//   rs_codec_tool split <m> <n> <input> <out-prefix>
//   rs_codec_tool join  <m> <n> <size> <output> <share>...
//
// Share files are named <out-prefix>.<idx> ; `size` is the original byte
// length printed by split.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ec/rs_code.h"
#include "util/crc32.h"

using namespace rspaxos;

namespace {

bool read_file(const std::string& path, Bytes& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  out.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
  return true;
}

bool write_file(const std::string& path, BytesView data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(f);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rs_codec_tool split <m> <n> <input> <out-prefix>\n"
               "  rs_codec_tool join  <m> <n> <size> <output> <share-file>...\n"
               "share files carry the index as their extension: prefix.0, prefix.1, ...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];

  if (mode == "split" && argc == 6) {
    int m = std::atoi(argv[2]);
    int n = std::atoi(argv[3]);
    auto code = ec::RsCode::create(m, n);
    if (!code.is_ok()) {
      std::fprintf(stderr, "bad theta(%d, %d): %s\n", m, n,
                   code.status().to_string().c_str());
      return 1;
    }
    Bytes input;
    if (!read_file(argv[4], input)) {
      std::fprintf(stderr, "cannot read %s\n", argv[4]);
      return 1;
    }
    auto shares = code.value().encode(input);
    for (int i = 0; i < n; ++i) {
      std::string path = std::string(argv[5]) + "." + std::to_string(i);
      if (!write_file(path, shares[static_cast<size_t>(i)])) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
    }
    std::printf("split %zu bytes into %d shares of %zu bytes (any %d reconstruct)\n",
                input.size(), n, code.value().share_size(input.size()), m);
    std::printf("original size: %zu   crc32c: %08x\n", input.size(), crc32c(input));
    return 0;
  }

  if (mode == "join" && argc >= 6) {
    int m = std::atoi(argv[2]);
    int n = std::atoi(argv[3]);
    size_t size = static_cast<size_t>(std::atoll(argv[4]));
    auto code = ec::RsCode::create(m, n);
    if (!code.is_ok()) {
      std::fprintf(stderr, "bad theta(%d, %d)\n", m, n);
      return 1;
    }
    std::map<int, Bytes> shares;
    for (int a = 6; a < argc; ++a) {
      std::string path = argv[a];
      auto dot = path.rfind('.');
      if (dot == std::string::npos) {
        std::fprintf(stderr, "share file %s has no .<idx> suffix\n", path.c_str());
        return 1;
      }
      int idx = std::atoi(path.substr(dot + 1).c_str());
      Bytes data;
      if (!read_file(path, data)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
      }
      shares.emplace(idx, std::move(data));
    }
    auto out = code.value().decode(shares, size);
    if (!out.is_ok()) {
      std::fprintf(stderr, "decode failed: %s\n", out.status().to_string().c_str());
      return 1;
    }
    if (!write_file(argv[5], out.value())) {
      std::fprintf(stderr, "cannot write %s\n", argv[5]);
      return 1;
    }
    std::printf("reconstructed %zu bytes from %zu shares   crc32c: %08x\n",
                out.value().size(), shares.size(), crc32c(out.value()));
    return 0;
  }

  return usage();
}
