// Quickstart: spin up the paper's 5-replica RS-Paxos key-value store (N=5,
// QR=QW=4, θ(3,5)) on the deterministic simulator, write/read/delete a few
// keys, and print what the protocol actually moved over the network and to
// disk compared to full-copy Paxos.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "kv/cluster.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"

using namespace rspaxos;

namespace {

// Drives the simulation until the callback-based operation completes.
template <typename Pred>
void run_until(sim::SimWorld& world, Pred done) {
  TimeMicros deadline = world.now() + 60 * kSeconds;
  while (!done() && world.now() < deadline) world.run_for(5 * kMillis);
}

uint64_t run_demo(bool rs_mode) {
  sim::SimWorld world(2024);
  kv::SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = rs_mode;  // RS-Paxos θ(3,5) vs classic full-copy Paxos
  opts.f = 1;
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();

  // Periodic metrics snapshots on a node's sim-time event loop (every 100 ms
  // of sim time); the cached Prometheus text is scraped at the end of main().
  obs::StatsReporter reporter(cluster.network().node(kv::endpoint_id(0, 0)),
                              &obs::MetricsRegistry::global(), 100 * kMillis);
  reporter.start();

  auto client = cluster.make_client(0);

  // --- write ---
  Bytes value(30'000, 0x42);
  bool done = false;
  client->put("hello", value, [&](Status s) {
    std::printf("  put(\"hello\", 30 KB)          -> %s\n", s.to_string().c_str());
    done = true;
  });
  run_until(world, [&] { return done; });

  // --- fast read (leased leader) ---
  done = false;
  client->get("hello", [&](StatusOr<Bytes> r) {
    std::printf("  get(\"hello\")                 -> %s (%zu bytes)\n",
                r.is_ok() ? "OK" : r.status().to_string().c_str(),
                r.is_ok() ? r.value().size() : 0);
    done = true;
  });
  run_until(world, [&] { return done; });

  // --- consistent read (explicit marker instance) ---
  done = false;
  client->consistent_get("hello", [&](StatusOr<Bytes> r) {
    std::printf("  consistent_get(\"hello\")      -> %s\n",
                r.is_ok() ? "OK" : r.status().to_string().c_str());
    done = true;
  });
  run_until(world, [&] { return done; });

  // --- delete (write of NULL, §4.4) ---
  done = false;
  client->del("hello", [&](Status s) {
    std::printf("  del(\"hello\")                 -> %s\n", s.to_string().c_str());
    done = true;
  });
  run_until(world, [&] { return done; });

  done = false;
  client->get("hello", [&](StatusOr<Bytes> r) {
    std::printf("  get(\"hello\") after delete    -> %s\n",
                r.is_ok() ? "unexpected OK" : r.status().to_string().c_str());
    done = true;
  });
  run_until(world, [&] { return done; });

  // Idle for half a second of sim time so heartbeats and the periodic
  // reporter visibly run.
  world.run_for(500 * kMillis);

  std::printf("  network bytes: %llu, flushed bytes: %llu (reporter ticks: %llu)\n",
              static_cast<unsigned long long>(cluster.total_network_bytes()),
              static_cast<unsigned long long>(cluster.total_flushed_bytes()),
              static_cast<unsigned long long>(reporter.snapshots_taken()));
  reporter.stop();
  return cluster.total_network_bytes();
}

void write_file(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("RS-Paxos quickstart — 5 replicas, QR=QW=4, theta(3,5), F=1\n\n");
  std::printf("[RS-Paxos]\n");
  uint64_t rs = run_demo(true);
  std::printf("\n[classic Paxos, same cluster]\n");
  uint64_t paxos = run_demo(false);
  std::printf("\nRS-Paxos moved %.0f%% of Paxos's bytes for the same workload.\n",
              100.0 * static_cast<double>(rs) / static_cast<double>(paxos));

  // Dump the observability artifacts covering both runs.
  auto& reg = obs::MetricsRegistry::global();
  write_file("quickstart.metrics.prom", reg.to_prometheus());
  write_file("quickstart.metrics.json", reg.to_json());
  write_file("quickstart.traces.json", obs::Tracer::global().slowest_json(8));
  std::printf("\nmetrics: wrote quickstart.metrics.{prom,json} and quickstart.traces.json\n");
  std::printf("sample:  rsp_wal_bytes_durable=%llu  traced commits=%zu\n",
              static_cast<unsigned long long>(
                  reg.counter("rsp_wal_bytes_durable", "").value()),
              obs::Tracer::global().completed_count());
  return 0;
}
