// Scenario: an enterprise backup service replicating large objects across
// five sites over a 50±10 ms / 500 Mbps private WAN — the paper's LARGE-WRITE
// motivation (§6.3). Shows per-object commit latency and total WAN traffic
// for RS-Paxos vs Paxos on the same object stream.
//
// Build & run:   ./build/examples/wan_backup
#include <cstdio>

#include "kv/cluster.h"
#include "util/histogram.h"

using namespace rspaxos;

namespace {

struct Outcome {
  Histogram latency;
  uint64_t wan_bytes;
  DurationMicros elapsed;
};

Outcome run_backup(bool rs_mode) {
  sim::SimWorld world(555);
  kv::SimClusterOptions opts;
  opts.num_servers = 5;
  opts.rs_mode = rs_mode;
  opts.f = 1;
  opts.link = sim::LinkParams::wan();
  opts.disk = sim::DiskParams::hdd();  // backup tier: cheap spinning disks
  opts.replica.heartbeat_interval = 150 * kMillis;
  opts.replica.election_timeout_min = 1200 * kMillis;
  opts.replica.election_timeout_max = 2000 * kMillis;
  opts.replica.lease_duration = 1000 * kMillis;
  kv::SimCluster cluster(&world, opts);
  cluster.wait_for_leaders();

  // Client co-located with the leader site (zero-cost link), like a backup
  // agent running in the primary datacenter.
  sim::LinkParams free_link{0, 0, 0.0, 0.0, 1e15};
  for (int s = 0; s < 5; ++s) {
    cluster.network().set_link(kv::kClientBase, kv::endpoint_id(s, 0), free_link);
    cluster.network().set_link(kv::endpoint_id(s, 0), kv::kClientBase, free_link);
  }
  auto client = cluster.make_client(0);

  Outcome out{};
  uint64_t net0 = cluster.total_network_bytes();
  TimeMicros t0 = world.now();
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    size_t size = static_cast<size_t>(rng.uniform(2, 8)) << 20;  // 2-8 MB objects
    Bytes object(size, static_cast<uint8_t>(i));
    bool done = false;
    TimeMicros begin = world.now();
    client->put("backup/chunk-" + std::to_string(i), std::move(object), [&](Status s) {
      if (s.is_ok()) out.latency.record(world.now() - begin);
      done = true;
    });
    TimeMicros deadline = world.now() + 300 * kSeconds;
    while (!done && world.now() < deadline) world.run_for(10 * kMillis);
  }
  out.wan_bytes = cluster.total_network_bytes() - net0;
  out.elapsed = world.now() - t0;
  return out;
}

}  // namespace

int main() {
  std::printf("WAN backup scenario — 5 sites, 50±10 ms, 500 Mbps, HDD tier\n");
  std::printf("12 objects of 2-8 MB committed through the replicated log\n\n");
  Outcome rs = run_backup(true);
  Outcome paxos = run_backup(false);

  std::printf("%-22s %14s %14s\n", "", "Paxos", "RS-Paxos");
  std::printf("%-22s %12.0fms %12.0fms\n", "mean commit latency",
              paxos.latency.mean() / 1000.0, rs.latency.mean() / 1000.0);
  std::printf("%-22s %12.0fms %12.0fms\n", "p99 commit latency",
              static_cast<double>(paxos.latency.value_at(0.99)) / 1000.0,
              static_cast<double>(rs.latency.value_at(0.99)) / 1000.0);
  std::printf("%-22s %13.1fMB %13.1fMB\n", "WAN bytes",
              static_cast<double>(paxos.wan_bytes) / 1e6,
              static_cast<double>(rs.wan_bytes) / 1e6);
  std::printf("%-22s %13.1fs %13.1fs\n", "total wall (sim)",
              static_cast<double>(paxos.elapsed) / 1e6,
              static_cast<double>(rs.elapsed) / 1e6);
  std::printf("\nWith theta(3,5), each accept carries 1/3 of the object — the WAN\n"
              "traffic and the serialization delay on the leader's uplink shrink\n"
              "accordingly (paper §6.2.1, wide area).\n");
  return 0;
}
