// Real-stack example: a multi-shard RS-Paxos deployment over actual TCP
// sockets on localhost. Each of the five "machines" is one node::NodeHost —
// ONE listen port, ONE I/O thread, ONE fsync'ing FileWal and ONE snapshot
// root — serving a replica of every Paxos group. Keys hash across the groups
// (kv::shard_of), so the shards commit independently while sharing each
// machine's group-commit stream.
//
// Every machine also exposes its live introspection plane — an admin HTTP
// endpoint on 127.0.0.1 serving GET /metrics (Prometheus), /status (per-group
// consensus state as JSON), /healthz (event-loop / fsync watchdog) and
// /traces/recent (span trees of recent commits). Pass a number of seconds to
// keep the cluster alive after the demo workload so you can poke it:
//
//   ./build/examples/tcp_cluster 60 &
//   curl localhost:<admin_port>/status     # ports are printed at startup
//
// Build & run:   ./build/examples/tcp_cluster [serve_seconds]
#include <unistd.h>

#include <cstdlib>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "kv/client.h"
#include "node/tcp_cluster.h"

using namespace rspaxos;

int main(int argc, char** argv) {
  constexpr int kServers = 5;
  constexpr uint32_t kGroups = 4;
  const int serve_seconds = argc > 1 ? std::atoi(argv[1]) : 0;

  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_tcp_demo_" + std::to_string(::getpid()));

  node::TcpClusterOptions opts;
  opts.num_servers = kServers;
  opts.num_groups = kGroups;
  opts.f = 1;  // theta(3,5) per group
  opts.data_dir = dir.string();
  opts.replica.heartbeat_interval = 30 * kMillis;
  opts.replica.election_timeout_min = 300 * kMillis;
  opts.replica.election_timeout_max = 600 * kMillis;
  opts.replica.lease_duration = 250 * kMillis;
  opts.admin = true;  // per-server introspection endpoints (ephemeral ports)

  auto started = node::TcpCluster::start(opts);
  if (!started.is_ok()) {
    std::fprintf(stderr, "cluster start: %s\n", started.status().to_string().c_str());
    return 1;
  }
  auto cluster = std::move(started).value();
  std::printf("%d servers x %u groups: one port, one I/O thread, one WAL and one\n"
              "snapshot root per server; every group replicated on all servers\n",
              kServers, kGroups);
  for (int s = 0; s < kServers; ++s) {
    std::printf("  server %d admin: curl http://127.0.0.1:%u/status   "
                "(also /metrics, /healthz, /traces/recent)\n",
                s, cluster->admin_port(s));
  }

  // Wait until every shard elected a leader (spread_leaders places group g's
  // initial leader on server g % kServers).
  for (uint32_t g = 0; g < kGroups; ++g) {
    while (cluster->leader_server_of(g) < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::printf("group %u led by server %d\n", g, cluster->leader_server_of(g));
  }

  auto cnode = cluster->start_client();
  if (!cnode.is_ok()) {
    std::fprintf(stderr, "client node: %s\n", cnode.status().to_string().c_str());
    return 1;
  }
  kv::KvClient::Options copts;
  copts.request_timeout = 1000 * kMillis;
  kv::KvClient client(cnode.value(), cluster->routing(), copts);
  cnode.value()->loop().post([&] { cnode.value()->set_handler(&client); });

  // Writes scatter across shards by key hash. KvClient is loop-thread-only,
  // so every call is posted onto the client node's loop rather than issued
  // from main.
  constexpr int kOps = 32;
  constexpr size_t kValueBytes = 20'000;
  std::atomic<int> completed{0};
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    cnode.value()->loop().post([&, i] {
      Bytes value(kValueBytes, static_cast<uint8_t>(i));
      client.put("user/" + std::to_string(i), std::move(value), [&](Status s) {
        if (!s.is_ok()) std::fprintf(stderr, "put failed: %s\n", s.to_string().c_str());
        completed++;
      });
    });
  }
  while (completed.load() < kOps) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto write_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("committed %d x 20KB writes across %u shards in %.1f ms (%.2f ms/op, "
              "real fsync)\n",
              kOps, kGroups, write_ms, write_ms / kOps);
  for (uint32_t g = 0; g < kGroups; ++g) {
    int n = 0;
    for (int i = 0; i < kOps; ++i) {
      if (kv::shard_of("user/" + std::to_string(i), kGroups) == g) n++;
    }
    std::printf("  shard %u took %d of the writes\n", g, n);
  }

  std::atomic<int> read_ok{0};
  completed = 0;
  for (int i = 0; i < kOps; ++i) {
    cnode.value()->loop().post([&, i] {
      client.get("user/" + std::to_string(i), [&, i](StatusOr<Bytes> r) {
        if (r.is_ok() && r.value().size() == kValueBytes &&
            r.value()[0] == static_cast<uint8_t>(i)) {
          read_ok++;
        }
        completed++;
      });
    });
  }
  while (completed.load() < kOps) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::printf("read back %d/%d values correctly via leased fast reads\n", read_ok.load(),
              kOps);

  // Every shard's records went through its machine's ONE log; flush counts
  // are machine-level, so cross-group group-commit amortizes the fsyncs.
  uint64_t flushed = 0, flushes = 0;
  for (int s = 0; s < kServers; ++s) {
    flushed += cluster->wal(s).bytes_flushed();
    flushes += cluster->wal(s).flush_ops();
  }
  std::printf("WAL totals across the %d machine logs: %llu bytes in %llu fsyncs\n"
              "(theta(3,5) flushes ~5/3 of the data instead of 5x; all %u groups\n"
              "share each machine's group-commit window)\n",
              kServers, static_cast<unsigned long long>(flushed),
              static_cast<unsigned long long>(flushes), kGroups);

  if (serve_seconds > 0) {
    std::printf("serving admin endpoints for %ds — try the curl lines above\n",
                serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }

  cluster.reset();  // detaches handlers, joins I/O threads
  std::filesystem::remove_all(dir);
  return 0;
}
