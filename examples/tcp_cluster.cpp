// Real-stack example: five RS-Paxos replicas over actual TCP sockets on
// localhost, each with a real fsync'ing file WAL — the same KvServer code
// that runs under the simulator, now on the §5-style substrate (async
// messaging over TCP, group-committed disk logs).
//
// Build & run:   ./build/examples/tcp_cluster
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "consensus/config.h"
#include "kv/client.h"
#include "kv/server.h"
#include "net/tcp_transport.h"
#include "storage/file_wal.h"

using namespace rspaxos;

int main() {
  constexpr int kReplicas = 5;
  auto ports = net::TcpTransport::free_ports(kReplicas + 1);
  if (ports.size() != kReplicas + 1) {
    std::fprintf(stderr, "could not allocate ports\n");
    return 1;
  }
  std::map<NodeId, net::PeerAddr> addrs;
  for (int i = 0; i < kReplicas; ++i) {
    addrs[static_cast<NodeId>(i + 1)] = net::PeerAddr{"127.0.0.1", ports[static_cast<size_t>(i)]};
  }
  constexpr NodeId kClientId = 100;
  addrs[kClientId] = net::PeerAddr{"127.0.0.1", ports[kReplicas]};

  net::TcpTransport transport(addrs);

  // WAL directory.
  auto dir = std::filesystem::temp_directory_path() /
             ("rspaxos_tcp_demo_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::vector<NodeId> members;
  for (int i = 1; i <= kReplicas; ++i) members.push_back(static_cast<NodeId>(i));
  auto cfg = consensus::GroupConfig::rs_max_x(members, 1).value();
  std::printf("cluster config: %s over TCP 127.0.0.1:{%u..%u}\n",
              cfg.to_string().c_str(), ports[0], ports[kReplicas - 1]);

  consensus::ReplicaOptions ropts;
  ropts.heartbeat_interval = 30 * kMillis;
  ropts.election_timeout_min = 300 * kMillis;
  ropts.election_timeout_max = 600 * kMillis;
  ropts.lease_duration = 250 * kMillis;

  std::vector<std::unique_ptr<storage::FileWal>> wals;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  for (int i = 1; i <= kReplicas; ++i) {
    auto node = transport.start_node(static_cast<NodeId>(i));
    if (!node.is_ok()) {
      std::fprintf(stderr, "start_node %d: %s\n", i, node.status().to_string().c_str());
      return 1;
    }
    auto wal = storage::FileWal::open((dir / ("wal-" + std::to_string(i))).string());
    if (!wal.is_ok()) {
      std::fprintf(stderr, "wal %d: %s\n", i, wal.status().to_string().c_str());
      return 1;
    }
    wals.push_back(std::move(wal).value());
    consensus::ReplicaOptions o = ropts;
    o.bootstrap_leader = (i == 1);
    auto server = std::make_unique<kv::KvServer>(node.value(), wals.back().get(), cfg, o);
    // Install + start on the node's loop: peers may deliver messages the
    // moment the handler is visible, and replica state is loop-thread-only.
    node.value()->loop().post(
        [nd = node.value(), srv = server.get()] {
          nd->set_handler(srv);
          srv->start();
        });
    servers.push_back(std::move(server));
  }

  // Client endpoint.
  auto cnode = transport.start_node(kClientId);
  if (!cnode.is_ok()) {
    std::fprintf(stderr, "client node: %s\n", cnode.status().to_string().c_str());
    return 1;
  }
  kv::RoutingTable routing;
  routing.shard_members.push_back(members);
  kv::KvClient::Options copts;
  copts.request_timeout = 1000 * kMillis;
  kv::KvClient client(cnode.value(), routing, copts);
  cnode.value()->set_handler(&client);

  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // let leader settle

  // A few real writes and reads. KvClient is loop-thread-only, so every call
  // is posted onto the client node's loop rather than issued from main.
  constexpr int kOps = 25;
  std::atomic<int> completed{0};
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    cnode.value()->loop().post([&, i] {
      Bytes value(20'000, static_cast<uint8_t>(i));
      client.put("user/" + std::to_string(i), std::move(value), [&](Status s) {
        if (!s.is_ok()) std::fprintf(stderr, "put failed: %s\n", s.to_string().c_str());
        completed++;
      });
    });
  }
  while (completed.load() < kOps) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto write_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::printf("committed %d x 20KB writes in %.1f ms (%.2f ms/op, real fsync)\n", kOps,
              write_ms, write_ms / kOps);

  std::atomic<int> read_ok{0};
  completed = 0;
  for (int i = 0; i < kOps; ++i) {
    cnode.value()->loop().post([&, i] {
      client.get("user/" + std::to_string(i), [&, i](StatusOr<Bytes> r) {
        if (r.is_ok() && r.value().size() == 20'000 &&
            r.value()[0] == static_cast<uint8_t>(i)) {
          read_ok++;
        }
        completed++;
      });
    });
  }
  while (completed.load() < kOps) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::printf("read back %d/%d values correctly via leased fast reads\n", read_ok.load(),
              kOps);

  uint64_t flushed = 0;
  for (auto& w : wals) flushed += w->bytes_flushed();
  std::printf("total WAL bytes fsync'd across replicas: %llu (values were %d x 20KB;\n"
              "theta(3,5) flushes ~5/3 of the data instead of 5x)\n",
              static_cast<unsigned long long>(flushed), kOps);

  servers.clear();
  wals.clear();
  std::filesystem::remove_all(dir);
  return 0;
}
