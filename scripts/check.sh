#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite plus every sanitizer preset.
#
#   scripts/check.sh            # tier-1 (default preset, all tests)
#   scripts/check.sh --fast     # tier-1 minus the `slow`-labeled socket suites
#   scripts/check.sh --san      # tier-1 + asan/tsan/ubsan preset suites
#   scripts/check.sh --obs      # observability loop only: metrics/trace/admin
#                               # suites + a live curl-style scrape smoke test
#
# The sanitizer presets build into their own trees (build-asan/ build-tsan/
# build-ubsan/) and run curated subsets: ASan+UBSan runs everything, TSan
# targets the threaded socket suites (10-20x slowdown; TIMEOUTs are widened
# in tests/CMakeLists.txt), UBSan re-checks the codec/storage/multi-group
# arithmetic paths.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
SAN=0
OBS=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --san) SAN=1 ;;
    --obs) OBS=1 ;;
    *) echo "usage: $0 [--fast] [--san] [--obs]" >&2; exit 2 ;;
  esac
done

run_preset() {
  local preset="$1"; shift
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest $* ==="
  ctest --preset "$preset" -j "$JOBS" "$@"
}

if [[ "$OBS" == 1 ]]; then
  # Narrow observability loop: histogram/exporter/tracer units plus the
  # real-socket admin scrape suite (admin_http_test boots a live TcpCluster
  # and scrapes /metrics, /status and /healthz exactly like curl would).
  run_preset default -R 'histogram_test|obs_test|trace_test|admin_http_test'
  echo "check.sh: observability suites passed"
  exit 0
fi

if [[ "$FAST" == 1 ]]; then
  # Narrow loop: skip the real-socket suites (labeled `slow`).
  run_preset default -LE slow
else
  run_preset default
fi

if [[ "$SAN" == 1 ]]; then
  run_preset asan
  run_preset tsan
  run_preset ubsan
fi

echo "check.sh: all requested suites passed"
