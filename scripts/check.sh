#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite plus every sanitizer preset.
#
#   scripts/check.sh            # tier-1 (default preset, all tests)
#   scripts/check.sh --fast     # tier-1 minus the `slow`-labeled socket suites
#   scripts/check.sh --san      # tier-1 + asan/tsan/ubsan preset suites
#   scripts/check.sh --obs      # observability loop only: metrics/trace/admin
#                               # suites + a live curl-style scrape smoke test
#   scripts/check.sh --sat      # saturation loop: admission/pipelining suites
#                               # + a short bench_saturation --smoke sweep that
#                               # must emit a sane BENCH_saturation.json
#   scripts/check.sh --uring    # io_uring lane: re-runs the WAL + TCP socket
#                               # suites with RSPAXOS_IO_BACKEND=uring; skips
#                               # (exit 0, clear message) when the kernel or
#                               # build lacks io_uring support. The tier-1
#                               # ladder always runs the epoll default.
#   scripts/check.sh --codes    # erasure-code policy lane: the policy suites
#                               # (incl. the scalar-GF rerun and the hh sim
#                               # cluster) + bench_codes --smoke, gated on the
#                               # JSON showing lrc single-failure repair
#                               # strictly below the rs baseline.
#   scripts/check.sh --reshard  # elastic-resharding lane: the migration /
#                               # balancer / routing suites (sim + real-socket)
#                               # plus an ASan rerun of the sim suite, then
#                               # bench_reshard --smoke gated on the JSON
#                               # showing the migration completed with sane
#                               # copy amplification.
#
# The sanitizer presets build into their own trees (build-asan/ build-tsan/
# build-ubsan/) and run curated subsets: ASan+UBSan runs everything, TSan
# targets the threaded socket suites (10-20x slowdown; TIMEOUTs are widened
# in tests/CMakeLists.txt), UBSan re-checks the codec/storage/multi-group
# arithmetic paths.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
SAN=0
OBS=0
SAT=0
URING=0
CODES=0
RESHARD=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --san) SAN=1 ;;
    --obs) OBS=1 ;;
    --sat) SAT=1 ;;
    --uring) URING=1 ;;
    --codes) CODES=1 ;;
    --reshard) RESHARD=1 ;;
    *) echo "usage: $0 [--fast] [--san] [--obs] [--sat] [--uring] [--codes] [--reshard]" >&2; exit 2 ;;
  esac
done

run_preset() {
  local preset="$1"; shift
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest $* ==="
  ctest --preset "$preset" -j "$JOBS" "$@"
}

if [[ "$OBS" == 1 ]]; then
  # Narrow observability loop: histogram/exporter/tracer units plus the
  # real-socket admin scrape suite (admin_http_test boots a live TcpCluster
  # and scrapes /metrics, /status and /healthz exactly like curl would).
  run_preset default -R 'histogram_test|obs_test|trace_test|admin_http_test'
  echo "check.sh: observability suites passed"
  exit 0
fi

if [[ "$SAT" == 1 ]]; then
  # Saturation loop: the admission-control and pipelined-client suites, then
  # a low-QPS sim-only open-loop sweep. The smoke sweep must finish inside
  # the timeout and write a BENCH_saturation.json whose knee is a number.
  run_preset default -R 'saturation_test|pipeline_test|pipeline_tcp_test|util_test'
  echo "=== [default] bench_saturation --smoke ==="
  (cd build/bench && timeout 300 ./bench_saturation --smoke)
  python3 - <<'EOF'
import json
with open("build/bench/BENCH_saturation.json") as f:
    doc = json.load(f)
knee = doc["sim"]["knee_qps"]
points = doc["sim"]["points"]
assert isinstance(knee, (int, float)) and knee == knee and knee > 0, knee
assert len(points) >= 6, len(points)
print(f"check.sh: smoke sweep ok — {len(points)} points, knee {knee:.0f} qps")
EOF
  echo "check.sh: saturation suites passed"
  exit 0
fi

if [[ "$CODES" == 1 ]]; then
  # Erasure-code policy lane: the policy unit/property suites (both the
  # dispatched and forced-scalar GF tiers), the wire-conformance suites that
  # pin rs byte-identity, and the hh sim-cluster end-to-end. Then a smoke
  # bench_codes run whose JSON must show the locality win the subsystem
  # exists for: lrc repairs one lost share with strictly fewer network bytes
  # than the rs any-x-of-n baseline.
  run_preset default -R 'ec_test|ec_policy_test|ec_cluster_test|msg_test|config_test|snapshot_test'
  echo "=== [default] bench_codes --smoke ==="
  (cd build/bench && timeout 300 ./bench_codes --smoke)
  python3 - <<'EOF'
import json
with open("build/bench/BENCH_codes.json") as f:
    doc = json.load(f)
rows = {p["code"]: p for p in doc["policies"]}
assert set(rows) == {"rs", "lrc", "hh"}, sorted(rows)
for p in rows.values():
    assert p["encode_mbps"] > 0 and p["decode_mbps"] > 0, p
    assert p["repair_bytes_single"] > 0, p
assert rows["lrc"]["repair_bytes_single"] < rows["rs"]["repair_bytes_single"], \
    (rows["lrc"]["repair_bytes_single"], rows["rs"]["repair_bytes_single"])
assert rows["hh"]["repair_bytes_single"] < rows["rs"]["repair_bytes_single"], \
    (rows["hh"]["repair_bytes_single"], rows["rs"]["repair_bytes_single"])
print("check.sh: code zoo ok — lrc repairs at "
      f"{rows['lrc']['repair_bytes_single'] / rows['rs']['repair_bytes_single']:.0%} "
      f"and hh at {rows['hh']['repair_bytes_single'] / rows['rs']['repair_bytes_single']:.0%} "
      "of rs bytes")
EOF
  echo "check.sh: code-policy suites passed"
  exit 0
fi

if [[ "$RESHARD" == 1 ]]; then
  # Elastic-resharding lane (DESIGN.md §14): the sim migration/balancer suite,
  # the real-socket migration-under-load suite, and the wire/client suites
  # that pin the routing trailer and per-shard cache invalidation. The sim
  # suite reruns under ASan — the migration driver and chunk path are the
  # newest ownership-heavy code in the tree. Then a smoke bench_reshard whose
  # JSON must show the move completed (epoch advanced past prepare+flip) and
  # copied roughly the seeded payload, not a multiple of it.
  run_preset default -R 'reshard_test|reshard_tcp_test|msg_test|kv_test'
  run_preset asan -R 'reshard_test'
  echo "=== [default] bench_reshard --smoke ==="
  (cd build/bench && timeout 300 ./bench_reshard --smoke)
  python3 - <<'EOF'
import json
with open("build/bench/BENCH_reshard.json") as f:
    doc = json.load(f)
cells = doc["cells"]
assert len(cells) >= 1, cells
for c in cells:
    assert c["final_epoch"] >= 2, c            # prepare + flip both committed
    assert c["migration_s"] > 0, c
    assert c["moved_bytes"] >= c["seeded_bytes"], c   # whole payload crossed
    assert c["copy_amplification"] < 2.0, c    # ...without gross re-copying
c = cells[0]
print(f"check.sh: reshard smoke ok — moved {c['moved_bytes']} B "
      f"({c['copy_amplification']:.2f}x of seeded) in {c['migration_s']:.3f} s")
EOF
  echo "check.sh: resharding suites passed"
  exit 0
fi

if [[ "$URING" == 1 ]]; then
  # io_uring lane: the suites that exercise IoDriver on both of its surfaces —
  # FileWal's WRITEV+FSYNC flusher and the TCP transport's readiness loop —
  # re-run with the uring backend selected. Support is probed with the same
  # code make_io_driver() uses, so "skip" here means production binaries on
  # this kernel would silently fall back to epoll too.
  echo "=== [default] configure + build (uring probe) ==="
  cmake --preset default
  cmake --build --preset default -j "$JOBS" --target io_backend_probe
  if ! ./build/tests/io_backend_probe; then
    echo "check.sh: --uring SKIPPED — kernel or build lacks io_uring support" \
         "(io_backend_probe reports epoll fallback); epoll coverage is tier-1"
    exit 0
  fi
  cmake --build --preset default -j "$JOBS"
  echo "=== [default] ctest (RSPAXOS_IO_BACKEND=uring) ==="
  RSPAXOS_IO_BACKEND=uring ctest --preset default -j "$JOBS" \
    -R 'storage_test|wal_conformance_test|transport_test|multi_group_tcp_test|multi_reactor_test|admin_http_test'
  echo "check.sh: uring suites passed"
  exit 0
fi

if [[ "$FAST" == 1 ]]; then
  # Narrow loop: skip the real-socket suites (labeled `slow`).
  run_preset default -LE slow
else
  run_preset default
fi

if [[ "$SAN" == 1 ]]; then
  run_preset asan
  run_preset tsan
  run_preset ubsan
fi

echo "check.sh: all requested suites passed"
